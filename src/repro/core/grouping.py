"""Grouping section instances of the same schema across pages (§5.6).

A matching score is computed between every pair of sections from two
different sample pages — combining tag-path similarity, boundary-marker
similarity and record tag-forest similarity.  Per page pair, the stable
marriage algorithm (with a no-match threshold) picks consistent matches;
across all pairs the matches form a graph whose maximal cliques of size
>= 2 (Bron-Kerbosch) are the *section instance groups*, one per section
schema.  Instances that match nothing on any other page are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.algorithms.cliques import section_instance_groups
from repro.algorithms.stable_marriage import stable_match
from repro.algorithms.tree_edit import forest_distance
from repro.core.model import SectionInstance
from repro.features.config import DEFAULT_CONFIG, FeatureConfig
from repro.obs import NULL_OBSERVER, ObserverLike
from repro.render.lines import ContentLine
from repro.tagpath.paths import TagPath

#: Minimum matching score for two instances to be considered the same
#: schema; the stable-marriage "allow no match" threshold.
MATCH_THRESHOLD = 0.60

#: weights of (tag path, SBM, tag forest) similarity in the match score
SCORE_WEIGHTS = (0.40, 0.30, 0.30)


def _section_path(section: SectionInstance) -> Optional[TagPath]:
    subtree = section.page.span_subtree(section.start, section.end)
    if subtree is None:
        return None
    return TagPath.to_node(subtree)


def _path_similarity(s1: SectionInstance, s2: SectionInstance) -> float:
    """Tag-path similarity in [0, 1].

    Incompatible paths score 0.  For compatible paths the Formula-1
    distance is halved before conversion: the same schema legitimately
    shifts by several sibling positions between pages (preceding sections
    appear and disappear), and Dtp normalizes by *total* S count, which is
    small for typical prefs — raw Dtp would punish such shifts as hard as
    a structural mismatch.
    """
    path1 = _section_path(s1)
    path2 = _section_path(s2)
    if path1 is None or path2 is None or not path1.compatible(path2):
        return 0.0
    return 1.0 - min(1.0, 0.5 * path1.distance(path2))


def _sbm_similarity(s1: SectionInstance, s2: SectionInstance) -> float:
    """Boundary-marker agreement in [-1, 1].

    Markers are a section schema's identity: two instances with *present
    but different* markers are almost certainly different schemas even if
    their tag structure is identical (sections sharing one table, Figure
    10), so disagreement is penalized rather than merely unrewarded.
    """

    def marker_sim(
        line1: Optional[ContentLine], line2: Optional[ContentLine]
    ) -> float:
        if line1 is None and line2 is None:
            return 0.5  # both unmarked: weak evidence either way
        if line1 is None or line2 is None:
            return 0.0
        return 1.0 if line1.cleaned == line2.cleaned else -1.0

    left = marker_sim(s1.lbm_line, s2.lbm_line)
    right = marker_sim(s1.rbm_line, s2.rbm_line)
    # The LBM dominates: it belongs to the section itself, whereas the RBM
    # is often the *next* section's header and varies with which sections
    # happen to be present on each page.
    return 0.75 * left + 0.25 * right


def _forest_similarity(s1: SectionInstance, s2: SectionInstance) -> float:
    if not s1.records or not s2.records:
        return 0.0
    rep1 = s1.records[0].tag_forest()
    rep2 = s2.records[0].tag_forest()
    return 1.0 - forest_distance(rep1, rep2)


def match_score(s1: SectionInstance, s2: SectionInstance) -> float:
    """The §5.6 matching score between two section instances, in [0, 1]."""
    w_path, w_sbm, w_forest = SCORE_WEIGHTS
    return (
        w_path * _path_similarity(s1, s2)
        + w_sbm * _sbm_similarity(s1, s2)
        + w_forest * _forest_similarity(s1, s2)
    )


@dataclass
class InstanceGroup:
    """One section schema's instances across sample pages."""

    members: List[Tuple[int, SectionInstance]]  # (page index, instance)

    def __len__(self) -> int:
        return len(self.members)

    @property
    def instances(self) -> List[SectionInstance]:
        return [instance for _, instance in self.members]


def group_section_instances(
    sections_per_page: Sequence[Sequence[SectionInstance]],
    threshold: float = MATCH_THRESHOLD,
    obs: ObserverLike = NULL_OBSERVER,
) -> List[InstanceGroup]:
    """Cluster section instances into schema groups (§5.6).

    ``sections_per_page[i]`` are the refined sections of sample page i.
    Returns groups ordered by the document position of their earliest
    instance, so wrapper order follows page layout order.
    """
    vertices: List[Tuple[int, int]] = []  # (page index, section index)
    for page_index, sections in enumerate(sections_per_page):
        for section_index in range(len(sections)):
            vertices.append((page_index, section_index))

    edges: List[Tuple[Tuple[int, int], Tuple[int, int]]] = []
    pages = len(sections_per_page)
    for i in range(pages):
        for j in range(i + 1, pages):
            rows = sections_per_page[i]
            cols = sections_per_page[j]
            if not rows or not cols:
                continue
            scores = [[match_score(a, b) for b in cols] for a in rows]
            for row, col in stable_match(scores, threshold=threshold):
                edges.append(((i, row), (j, col)))

    obs.count("grouping.instances", len(vertices))
    obs.count("grouping.edges", len(edges))
    cliques = section_instance_groups(vertices, edges, min_size=2)
    obs.count("grouping.cliques", len(cliques))
    merged = _merge_overlapping_cliques(cliques)

    groups: List[InstanceGroup] = []
    for clique in merged:
        members = sorted(clique)
        # One instance per page: a merged group can briefly hold two
        # same-page instances; keep the earliest (document order) per page.
        seen_pages: Set[int] = set()
        unique: List[Tuple[int, int]] = []
        for page_index, section_index in members:
            if page_index in seen_pages:
                continue
            seen_pages.add(page_index)
            unique.append((page_index, section_index))
        if len(unique) < 2:
            continue
        groups.append(
            InstanceGroup(
                members=[
                    (page_index, sections_per_page[page_index][section_index])
                    for page_index, section_index in unique
                ]
            )
        )
    groups.sort(
        key=lambda g: min(instance.start for instance in g.instances)
    )
    obs.count("grouping.groups", len(groups))
    return groups


def _merge_overlapping_cliques(
    cliques: Sequence[FrozenSet[Tuple[int, int]]],
) -> List[Set[Tuple[int, int]]]:
    """Union maximal cliques that share an instance.

    When a schema's instances vary (boundary noise on some pages), the
    match graph is near-complete rather than complete and Bron-Kerbosch
    reports several overlapping maximal cliques for the *same* schema —
    which would become duplicate wrappers.  Cliques sharing a vertex are
    merged back into one instance group.
    """
    merged: List[Set[Tuple[int, int]]] = []
    for clique in cliques:
        group = set(clique)
        absorbed: List[Set[Tuple[int, int]]] = []
        for existing in merged:
            if existing & group:
                group |= existing
                absorbed.append(existing)
        for existing in absorbed:
            merged.remove(existing)
        merged.append(group)
    return merged
