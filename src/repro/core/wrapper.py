"""Section wrappers and the engine-level wrapper (paper §5.7).

A section wrapper is the quaternion ⟨pref, seps, LBMs, RBMs⟩:

- ``pref`` — a merged compact tag path locating the minimum subtree that
  holds the section's records; levels whose S counts varied across the
  sample instances are flexible;
- ``seps`` — the record separator rule partitioning the subtree into
  records (``child-start:<tag>``, ``per-child`` or ``whole``);
- ``LBMs`` / ``RBMs`` — the observed (cleaned) boundary-marker texts plus
  their line text attributes (attributes feed section families, §5.8).

:class:`EngineWrapper` holds the ordered wrapper list (and section
families once built) for one search engine and applies them to new
result pages.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from bisect import bisect_left, bisect_right
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.dse import clean_page_lines
from repro.core.grouping import InstanceGroup
from repro.core.mining import separator_tag_of
from repro.core.model import (
    ExtractedRecord,
    ExtractedSection,
    PageExtraction,
    SectionInstance,
    section_to_extracted,
)
from repro.features.blocks import Block
from repro.features.config import DEFAULT_CONFIG, FeatureConfig
from repro.htmlmod.dom import Document, Element
from repro.htmlmod.parser import parse_html
from repro.obs import NULL_OBSERVER, ObserverLike
from repro.render.layout import render_page
from repro.render.lines import ContentLine, RenderedPage
from repro.render.styles import TextAttr
from repro.tagpath.paths import MergedTagPath, TagPath

if TYPE_CHECKING:
    from repro.core.family import SectionFamily

#: How far a fixed pref level may drift on an unseen page (S steps).
POSITION_SLACK = 2


@dataclass(frozen=True)
class SeparatorRule:
    """How a section subtree's lines partition into records."""

    kind: str  # 'child-start' | 'per-child' | 'whole'
    tag: str = ""

    def __str__(self) -> str:
        return f"{self.kind}:{self.tag}" if self.tag else self.kind


@dataclass
class SectionWrapper:
    """Extraction rules for one section schema."""

    schema_id: str
    pref: MergedTagPath
    separator: SeparatorRule
    lbm_texts: Set[str] = field(default_factory=set)
    rbm_texts: Set[str] = field(default_factory=set)
    lbm_attrs: FrozenSet[TextAttr] = frozenset()
    rbm_attrs: FrozenSet[TextAttr] = frozenset()
    record_attrs: FrozenSet[TextAttr] = frozenset()
    #: typical records seen at induction time (sanity range at extraction)
    typical_records: int = 0
    #: whether the boundary markers lie *inside* the pref subtree (the
    #: shared-container structure of Figure 10) — a Type 1 family
    #: precondition (§5.8)
    markers_inside: bool = False

    def __repr__(self) -> str:
        return (
            f"SectionWrapper({self.schema_id}, pref={self.pref}, "
            f"sep={self.separator}, lbm={sorted(self.lbm_texts)!r})"
        )


def _majority(values: Sequence[str]) -> Optional[str]:
    filtered = [v for v in values if v]
    if not filtered:
        return None
    return Counter(filtered).most_common(1)[0][0]


def _marker_features(
    instances: Sequence[SectionInstance], side: str
) -> Tuple[Set[str], FrozenSet[TextAttr]]:
    """Majority-vote boundary-marker texts and their attribute set."""
    texts: List[str] = []
    attrs: List[FrozenSet[TextAttr]] = []
    for instance in instances:
        line = instance.lbm_line if side == "left" else instance.rbm_line
        if line is None:
            continue
        text = line.cleaned or line.text.lower().strip()
        if not text:
            continue  # an HR or image marker has no usable text
        texts.append(text)
        attrs.append(line.attrs)
    if not texts:
        return set(), frozenset()
    winner = Counter(texts).most_common(1)[0][0]
    winner_attrs = [a for t, a in zip(texts, attrs) if t == winner]
    return set(texts), winner_attrs[0] if winner_attrs else frozenset()


def build_section_wrapper(
    group: InstanceGroup,
    schema_id: str,
    config: FeatureConfig = DEFAULT_CONFIG,
    obs: ObserverLike = NULL_OBSERVER,
) -> Optional[SectionWrapper]:
    """Build a wrapper from one section instance group (§5.7).

    Returns None when no two instances have compatible subtree paths (no
    reliable pref can be merged — the paper's problematic-DOM case).
    """
    paths: List[TagPath] = []
    instances: List[SectionInstance] = []
    for instance in group.instances:
        subtree = instance.page.span_subtree(instance.start, instance.end)
        if subtree is None:
            continue
        paths.append(TagPath.to_node(subtree))
        instances.append(instance)
    if not paths:
        obs.count("wrapper.no_pref")
        return None

    # Merge the largest compatible subset of paths.
    buckets: Dict[Tuple[str, ...], List[int]] = {}
    for index, path in enumerate(paths):
        buckets.setdefault(path.c_tags, []).append(index)
    best_indexes = max(buckets.values(), key=len)
    if len(best_indexes) < 2:
        obs.count("wrapper.no_pref")
        return None
    merged = MergedTagPath.merge([paths[i] for i in best_indexes])
    kept = [instances[i] for i in best_indexes]

    separator = _derive_separator(kept)
    lbm_texts, lbm_attrs = _marker_features(kept, "left")
    rbm_texts, rbm_attrs = _marker_features(kept, "right")
    record_attrs = frozenset(
        attr
        for instance in kept
        for record in instance.records
        for line in record.lines
        for attr in line.attrs
    )
    typical = round(
        sum(len(instance.records) for instance in kept) / len(kept)
    )

    inside_votes = 0
    for instance in kept:
        subtree = instance.page.span_subtree(instance.start, instance.end)
        if subtree is None or instance.lbm is None:
            continue
        subtree_span = instance.page.line_range_of_element(subtree)
        if subtree_span and subtree_span[0] <= instance.lbm <= subtree_span[1]:
            inside_votes += 1

    return SectionWrapper(
        schema_id=schema_id,
        pref=merged,
        separator=separator,
        lbm_texts=lbm_texts,
        rbm_texts=rbm_texts,
        lbm_attrs=lbm_attrs,
        rbm_attrs=rbm_attrs,
        record_attrs=record_attrs,
        typical_records=typical,
        markers_inside=inside_votes > len(kept) / 2,
    )


def _derive_separator(instances: Sequence[SectionInstance]) -> SeparatorRule:
    tags = [separator_tag_of(instance.records) for instance in instances]
    winner = _majority([t for t in tags if t])
    if winner:
        return SeparatorRule("child-start", winner)
    if all(len(instance.records) == 1 for instance in instances):
        return SeparatorRule("whole")
    return SeparatorRule("per-child")


# ---------------------------------------------------------------------------
# Wrapper application
# ---------------------------------------------------------------------------


#: ``span_of`` hook: a precomputed element -> line-span lookup (see
#: :class:`repro.perf.serve.PageIndex`); None falls back to the page's
#: per-call subtree walk.
SpanLookup = Callable[[Element], Optional[Tuple[int, int]]]


def partition_subtree_records(
    page: RenderedPage,
    subtree: Element,
    separator: SeparatorRule,
    span_of: Optional[SpanLookup] = None,
) -> List[Block]:
    """Partition a located section subtree into record blocks."""
    lookup = span_of if span_of is not None else page.line_range_of_element
    span = lookup(subtree)
    if span is None:
        return []
    start, end = span
    if separator.kind == "whole":
        return [Block(page, start, end)]

    boundaries: List[int] = []
    for child in subtree.children:
        if not isinstance(child, Element):
            continue
        child_span = lookup(child)
        if child_span is None:
            continue
        if separator.kind == "per-child" or child.tag == separator.tag:
            boundaries.append(child_span[0])

    usable = sorted({b for b in boundaries if start < b <= end})
    blocks: List[Block] = []
    current = start
    for boundary in usable:
        blocks.append(Block(page, current, boundary - 1))
        current = boundary
    blocks.append(Block(page, current, end))

    # With a child-start separator, a leading stub before the first
    # separator child is template residue, not a record.
    if separator.kind == "child-start" and boundaries:
        first_sep = min(boundaries)
        blocks = [b for b in blocks if b.end >= first_sep]
        if blocks and blocks[0].start < first_sep:
            blocks[0] = Block(page, first_sep, blocks[0].end)
    return blocks


def _candidate_score(
    wrapper: SectionWrapper, page: RenderedPage, subtree: Element
) -> float:
    """Rank pref candidates by boundary-marker agreement."""
    span = page.line_range_of_element(subtree)
    if span is None:
        return float("-inf")
    start, end = span
    score = 0.0
    before = page.lines[start - 1] if start - 1 >= 0 else None
    after = page.lines[end + 1] if end + 1 < len(page.lines) else None
    if before is not None and wrapper.lbm_texts:
        if (before.cleaned or before.text.lower()) in wrapper.lbm_texts:
            score += 1.0
        elif before.attrs == wrapper.lbm_attrs and wrapper.lbm_attrs:
            score += 0.5
    if after is not None and wrapper.rbm_texts:
        if (after.cleaned or after.text.lower()) in wrapper.rbm_texts:
            score += 1.0
        elif after.attrs == wrapper.rbm_attrs and wrapper.rbm_attrs:
            score += 0.5
    return score


def apply_section_wrapper(
    wrapper: SectionWrapper, page: RenderedPage
) -> Optional[SectionInstance]:
    """Apply one section wrapper to a rendered page.

    Returns the best-scoring candidate section, or None when the schema
    has no instance on this page.
    """
    # One traversal finds both the exact and the slack-relaxed candidate
    # sets; exact matches win when any exist (identical to running the
    # exact pass first and falling back to a second slack pass).
    exact, slacked = wrapper.pref.find_with_slack(
        page.document.root, POSITION_SLACK
    )
    candidates = exact if exact else slacked
    if not candidates:
        return None

    scored = [
        (_candidate_score(wrapper, page, subtree), -index, subtree)
        for index, subtree in enumerate(candidates)
    ]
    scored.sort()
    best_score, _, best = scored[-1]
    if len(candidates) > 1 and best_score <= 0.0:
        # Multiple positions fit the path but none shows the schema's
        # boundary markers: extracting would be guessing.
        return None

    records = partition_subtree_records(page, best, wrapper.separator)
    span = page.line_range_of_element(best)
    if span is None:
        return None
    records, lbm, rbm, marker_hits = _bound_by_markers(wrapper, page, records, span)
    if not records:
        return None
    return SectionInstance(
        page=page,
        block=Block(page, records[0].start, records[-1].end),
        records=records,
        lbm=lbm,
        rbm=rbm,
        origin=f"wrapper:{wrapper.schema_id}",
        # Verified marker hits dominate the pre-bounding candidate score:
        # they reflect the *final* section boundaries.
        score=float(marker_hits) if marker_hits else max(best_score, 0.0) * 0.5,
    )


def _bound_by_markers(
    wrapper: SectionWrapper,
    page: RenderedPage,
    records: List[Block],
    span: Tuple[int, int],
) -> Tuple[List[Block], Optional[int], Optional[int], int]:
    """Clip the record list to the wrapper's boundary markers (§5.7).

    The pref subtree can contain more than the section (its minimum
    subtree may be shared with neighbours); the LBMs/RBMs bound the
    section within it: records at or before the LBM line and at or after
    the RBM line are outside the section.
    """
    start, end = span
    lbm: Optional[int] = start - 1 if start - 1 >= 0 else None
    rbm: Optional[int] = end + 1 if end + 1 < len(page.lines) else None
    hits = 0

    def text_key(line: ContentLine) -> str:
        return line.cleaned or line.text.lower()

    if wrapper.lbm_texts:
        for number in range(max(0, start - 1), end + 1):
            if text_key(page.lines[number]) in wrapper.lbm_texts:
                lbm = number
                records = [r for r in records if r.start > number]
                hits += 1
                break
    if wrapper.rbm_texts and records:
        # The first marker occurrence after the section's first record
        # bounds it on the right (later occurrences belong to later
        # sections sharing the same marker text, e.g. "more" footers).
        for number in range(records[0].start + 1, min(len(page.lines), end + 2)):
            if text_key(page.lines[number]) in wrapper.rbm_texts:
                rbm = number
                records = [r for r in records if r.end < number]
                hits += 1
                break
    return records, lbm, rbm, hits


class EngineWrapper:
    """The full wrapper of one search engine: ordered section wrappers
    plus section families (§5.8), applied to new result pages."""

    def __init__(
        self,
        wrappers: Sequence[SectionWrapper],
        families: Sequence["SectionFamily"] = (),
        config: FeatureConfig = DEFAULT_CONFIG,
    ) -> None:
        self.wrappers: List[SectionWrapper] = list(wrappers)
        self.families: List["SectionFamily"] = list(families)
        self.config = config

    def __repr__(self) -> str:
        return (
            f"EngineWrapper(schemas={len(self.wrappers)}, "
            f"families={len(self.families)})"
        )

    # -- application ------------------------------------------------------
    def extract(
        self,
        markup_or_document: Union[str, Document],
        query: str = "",
        obs: ObserverLike = NULL_OBSERVER,
    ) -> PageExtraction:
        """Extract all dynamic sections and their records from a page.

        ``markup_or_document`` may be an HTML string or a parsed
        :class:`Document`; ``query`` is the query string that produced the
        page (used to clean semi-dynamic boundary markers).  ``obs`` is an
        optional :class:`repro.obs.Observer`: extraction runs under the
        spans ``render``, ``families`` and ``wrappers``.
        """
        with obs.span("render"):
            if isinstance(markup_or_document, Document):
                document = markup_or_document
            else:
                document = parse_html(markup_or_document)
            page = render_page(document)
            clean_page_lines(page, query.split())
            obs.count("render.lines", len(page.lines))

        instances: List[Tuple[str, SectionInstance]] = []

        with obs.span("families"):
            found_by_family: Set[str] = set()
            for family in self.families:
                for schema_id, instance in family.apply(page):
                    instances.append((schema_id, instance))
                    found_by_family.add(schema_id)
            obs.count("extract.family_sections", len(instances))

        with obs.span("wrappers"):
            for wrapper in self.wrappers:
                if wrapper.schema_id in found_by_family:
                    continue  # the family already located this schema
                found = apply_section_wrapper(wrapper, page)
                if found is not None:
                    instances.append((wrapper.schema_id, found))

            deduped = _dedup_instances(instances)
            obs.count("extract.dedup_dropped", len(instances) - len(deduped))
            deduped.sort(key=lambda item: item[1].start)
            obs.count("extract.sections", len(deduped))
            obs.count(
                "extract.records",
                sum(len(instance.records) for _, instance in deduped),
            )
        return PageExtraction(
            sections=tuple(
                section_to_extracted(instance, schema_id)
                for schema_id, instance in deduped
            )
        )


def _dedup_instances(
    instances: List[Tuple[str, SectionInstance]]
) -> List[Tuple[str, SectionInstance]]:
    """Resolve overlapping claims.

    Boundary-marker-confirmed instances win over unconfirmed ones (a huge
    unconfirmed instance must not shadow a confirmed section inside it);
    among equals, instances with more records win (a coarse claim that
    sees whole sections as "records" loses to the fine reading), then
    larger sections, then earlier ones.
    """
    ordered = sorted(
        instances,
        key=lambda item: (
            -item[1].score,
            -len(item[1].records),
            -(item[1].end - item[1].start),
            item[1].start,
        ),
    )
    # Kept instances are pairwise disjoint by construction, so sorted by
    # start their ends are sorted too, and a candidate [s, e] can only
    # overlap the kept interval with the greatest start <= e: one bisect
    # replaces the all-pairs scan (winner set and order are unchanged).
    kept: List[Tuple[str, SectionInstance]] = []
    starts: List[int] = []
    ends: List[int] = []
    for schema_id, instance in ordered:
        pos = bisect_right(starts, instance.end)
        if pos > 0 and ends[pos - 1] >= instance.start:
            continue
        kept.append((schema_id, instance))
        at = bisect_left(starts, instance.start)
        starts.insert(at, instance.start)
        ends.insert(at, instance.end)
    return kept
