"""Wrapper verification and drift detection.

The paper's applications (metasearch, deep-web crawling) apply a wrapper
for a long time after induction; when the engine redesigns its result
pages, extraction silently degrades.  This module scores how healthy a
wrapper's output looks on a page, so callers can trigger re-induction —
the "automatic maintenance of metasearch engines" loop of §1.

Checks, each contributing to a [0, 1] health score:

- **coverage** — the wrapper extracted at least one section, and a
  plausible fraction of the page's content lines belongs to records;
- **count plausibility** — per-schema record counts near the induction-
  time typical counts (within a generous band; result counts genuinely
  vary by query);
- **record homogeneity** — records inside each section still look like
  one another (mean inter-record distance under a threshold);
- **marker agreement** — boundary markers found where the wrapper
  expects them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.dse import clean_page_lines
from repro.core.wrapper import EngineWrapper, apply_section_wrapper
from repro.features.blocks import Block
from repro.features.cohesion import inter_record_distance
from repro.features.config import DEFAULT_CONFIG
from repro.features.record_distance import RecordDistanceCache
from repro.htmlmod.dom import Document
from repro.htmlmod.parser import parse_html
from repro.render.layout import render_page

#: mean Drec above which a section's records no longer cohere
HOMOGENEITY_LIMIT = 0.45

#: acceptable ratio band of extracted records vs induction-time typical
COUNT_BAND = (0.2, 5.0)


@dataclass(frozen=True)
class SectionHealth:
    """Per-schema health outcome for one page."""

    schema_id: str
    found: bool
    record_count: int = 0
    typical_records: int = 0
    homogeneity: float = 0.0  # mean inter-record distance (0 = identical)
    marker_hit: bool = False

    @property
    def healthy(self) -> bool:
        if not self.found:
            return False
        if self.homogeneity > HOMOGENEITY_LIMIT:
            return False
        if self.typical_records:
            ratio = self.record_count / self.typical_records
            if not (COUNT_BAND[0] <= ratio <= COUNT_BAND[1]):
                return False
        return True


@dataclass(frozen=True)
class WrapperHealth:
    """Aggregate wrapper health on one page."""

    sections: Tuple[SectionHealth, ...]
    score: float

    @property
    def drifted(self) -> bool:
        """True when re-induction is advisable."""
        return self.score < 0.5


def check_wrapper(
    engine: EngineWrapper, markup_or_document, query: str = ""
) -> WrapperHealth:
    """Assess wrapper health against one result page.

    Sections legitimately absent for a query lower the score only
    mildly; structural mismatches (found-but-incoherent sections, wild
    record counts) lower it hard.
    """
    if isinstance(markup_or_document, Document):
        document = markup_or_document
    else:
        document = parse_html(markup_or_document)
    page = render_page(document)
    clean_page_lines(page, query.split())

    cache = RecordDistanceCache(DEFAULT_CONFIG)
    outcomes: List[SectionHealth] = []
    for wrapper in engine.wrappers:
        instance = apply_section_wrapper(wrapper, page)
        if instance is None:
            outcomes.append(
                SectionHealth(schema_id=wrapper.schema_id, found=False)
            )
            continue
        homogeneity = inter_record_distance(
            instance.records, DEFAULT_CONFIG, cache
        )
        outcomes.append(
            SectionHealth(
                schema_id=wrapper.schema_id,
                found=True,
                record_count=len(instance.records),
                typical_records=wrapper.typical_records,
                homogeneity=homogeneity,
                marker_hit=instance.score >= 1.0,
            )
        )

    if not outcomes:
        return WrapperHealth(sections=(), score=0.0)

    score = 0.0
    for health in outcomes:
        if health.healthy:
            score += 1.0
        elif not health.found:
            score += 0.4  # absence can be legitimate (query dependence)
    score /= len(outcomes)
    return WrapperHealth(sections=tuple(outcomes), score=score)


def check_wrapper_on_pages(
    engine: EngineWrapper, pages: List[Tuple[str, str]]
) -> float:
    """Mean health score over several (markup, query) pages."""
    if not pages:
        return 0.0
    total = sum(check_wrapper(engine, markup, query).score for markup, query in pages)
    return total / len(pages)
