"""Wrapper verification and drift detection.

The paper's applications (metasearch, deep-web crawling) apply a wrapper
for a long time after induction; when the engine redesigns its result
pages, extraction silently degrades.  This module scores how healthy a
wrapper's output looks on a page, so callers can trigger re-induction —
the "automatic maintenance of metasearch engines" loop of §1.

Checks, each contributing to a [0, 1] health score:

- **coverage** — the wrapper extracted at least one section, and a
  plausible fraction of the page's content lines belongs to records;
- **count plausibility** — per-schema record counts near the induction-
  time typical counts (within a generous band; result counts genuinely
  vary by query);
- **record homogeneity** — records inside each section still look like
  one another (mean inter-record distance under a threshold);
- **marker agreement** — boundary markers found where the wrapper
  expects them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.model import SectionInstance

from repro.core.dse import clean_page_lines
from repro.core.wrapper import EngineWrapper, apply_section_wrapper
from repro.features.cohesion import inter_record_distance
from repro.features.record_distance import RecordDistanceCache
from repro.htmlmod.dom import Document, Element
from repro.htmlmod.parser import parse_html
from repro.obs import NULL_OBSERVER, ObserverLike
from repro.perf.fingerprints import ATTR_INTERNER
from repro.perf.kernels import DINR_MEMO
from repro.render.layout import render_page

#: mean Drec above which a section's records no longer cohere
HOMOGENEITY_LIMIT = 0.45

#: acceptable ratio band of extracted records vs induction-time typical
COUNT_BAND = (0.2, 5.0)


@dataclass(frozen=True)
class SectionHealth:
    """Per-schema health outcome for one page."""

    schema_id: str
    found: bool
    record_count: int = 0
    typical_records: int = 0
    homogeneity: float = 0.0  # mean inter-record distance (0 = identical)
    marker_hit: bool = False

    @property
    def count_plausible(self) -> bool:
        """Record count within the acceptable band of the typical count."""
        if not self.typical_records:
            return True
        ratio = self.record_count / self.typical_records
        return COUNT_BAND[0] <= ratio <= COUNT_BAND[1]

    @property
    def homogeneous(self) -> bool:
        """Records still cohere (mean Drec under the drift limit)."""
        return self.homogeneity <= HOMOGENEITY_LIMIT

    @property
    def checks(self) -> Dict[str, bool]:
        """Per-check breakdown: which individual checks passed.

        The keys mirror the module docstring's check list; health reports
        embed this dict so a drifted wrapper shows *which* check failed.
        """
        return {
            "found": self.found,
            "homogeneous": self.homogeneous,
            "count_plausible": self.count_plausible,
            "marker_hit": self.marker_hit,
        }

    @property
    def healthy(self) -> bool:
        if not self.found:
            return False
        if not self.homogeneous:
            return False
        return self.count_plausible


@dataclass(frozen=True)
class WrapperHealth:
    """Aggregate wrapper health on one page."""

    sections: Tuple[SectionHealth, ...]
    score: float

    @property
    def drifted(self) -> bool:
        """True when re-induction is advisable."""
        return self.score < 0.5

    @property
    def metrics(self) -> Dict[str, float]:
        """Machine-readable per-check metric breakdown for this page.

        The fractions aggregate the per-section :attr:`SectionHealth.checks`
        over all schemas, so a trajectory of these dicts attributes a
        health regression to the check that started failing.
        """
        n = len(self.sections)
        if n == 0:
            return {
                "score": self.score,
                "sections": 0,
                "found_rate": 0.0,
                "healthy_rate": 0.0,
                "homogeneous_rate": 0.0,
                "count_plausible_rate": 0.0,
                "marker_hit_rate": 0.0,
                "marker_hit_found_rate": 0.0,
                "mean_homogeneity": 0.0,
            }
        found = [s for s in self.sections if s.found]
        return {
            "score": self.score,
            "sections": n,
            "found_rate": len(found) / n,
            "healthy_rate": sum(s.healthy for s in self.sections) / n,
            "homogeneous_rate": sum(s.homogeneous for s in self.sections) / n,
            "count_plausible_rate": sum(s.count_plausible for s in self.sections) / n,
            "marker_hit_rate": sum(s.marker_hit for s in self.sections) / n,
            # Marker agreement among the sections that *were* found: a
            # legitimately absent section cannot hit its markers, so the
            # all-sections rate above dips on every sparse query; this
            # rate only moves when located sections lose their markers —
            # the cleanest template-drift signal the monitor watches.
            "marker_hit_found_rate": (
                sum(s.marker_hit for s in found) / len(found) if found else 0.0
            ),
            "mean_homogeneity": (
                sum(s.homogeneity for s in found) / len(found) if found else 0.0
            ),
        }

    def to_obj(self) -> Dict[str, Any]:
        """The machine-readable health document (``check --json``, events).

        Schema: ``{"score", "drifted", "metrics", "sections": [{"schema",
        "status", "record_count", "typical_records", "homogeneity",
        "checks"}]}`` — everything the human-readable ``check`` output
        prints, as JSON for monitors and CI to consume.
        """
        sections = []
        for section in self.sections:
            status = (
                "ok"
                if section.healthy
                else ("absent" if not section.found else "suspect")
            )
            sections.append(
                {
                    "schema": section.schema_id,
                    "status": status,
                    "record_count": section.record_count,
                    "typical_records": section.typical_records,
                    "homogeneity": section.homogeneity,
                    "checks": section.checks,
                }
            )
        return {
            "score": self.score,
            "drifted": self.drifted,
            "metrics": self.metrics,
            "sections": sections,
        }


def check_wrapper(
    engine: EngineWrapper,
    markup_or_document: Union[str, Document],
    query: str = "",
    obs: ObserverLike = NULL_OBSERVER,
) -> WrapperHealth:
    """Assess wrapper health against one result page.

    Sections legitimately absent for a query lower the score only
    mildly; structural mismatches (found-but-incoherent sections, wild
    record counts) lower it hard.
    """
    with obs.span("check"):
        if isinstance(markup_or_document, Document):
            document = markup_or_document
        else:
            document = parse_html(markup_or_document)
        page = render_page(document)
        clean_page_lines(page, query.split())

        instances = [
            apply_section_wrapper(wrapper, page) for wrapper in engine.wrappers
        ]
        return health_from_applications(engine, instances, obs=obs)


def _section_dinr_key(
    config: Any, instance: SectionInstance
) -> Optional[Tuple[Any, ...]]:
    """A process-wide memo key determining a section's Dinr exactly.

    Every record fingerprint — and hence every pairwise Drec and their
    mean — is a deterministic function of (a) the per-line visual
    features over the section's line span, (b) the section subtree's
    tag structure together with where each rendered leaf falls among
    those lines, and (c) the records' line boundaries within the span.
    Capturing exactly those three (plus the config) lets the serving
    loop skip re-deriving per-record tag forests and fingerprints when
    it has met the same section line-up before.  Unrenderable children
    are omitted: they influence neither the forests (``span_forest``
    filters to elements, and element children are always captured) nor
    the line features.

    Returns None when the section has no locatable subtree (the caller
    then computes Dinr directly).
    """
    records = instance.records
    page = records[0].page
    start = records[0].start
    end = records[-1].end
    root = page.span_subtree(start, end)
    if root is None:
        return None
    leaf_line = page.leaf_line_map()

    def node_key(node: Element) -> Tuple[Any, ...]:
        children: List[Any] = []
        for child in node.children:
            if isinstance(child, Element):
                children.append(node_key(child))
            else:
                line = leaf_line.get(id(child))
                if line is not None:
                    children.append(line - start)
        own = leaf_line.get(id(node))
        return (
            node.tag,
            -1 if own is None else own - start,
            tuple(children),
        )

    mask = ATTR_INTERNER.mask
    line_features = tuple(
        (line.line_type, line.position, mask(line.attrs))
        for line in page.lines[start : end + 1]
    )
    boundaries = tuple((r.start - start, r.end - start) for r in records)
    return (config, node_key(root), line_features, boundaries)


def health_from_applications(
    engine: EngineWrapper,
    instances: Sequence[Optional[SectionInstance]],
    obs: ObserverLike = NULL_OBSERVER,
) -> WrapperHealth:
    """Score per-wrapper application results into a :class:`WrapperHealth`.

    ``instances`` is aligned with ``engine.wrappers`` — one (possibly
    None) :class:`SectionInstance` per section wrapper, as produced by
    :func:`repro.core.wrapper.apply_section_wrapper` or by the compiled
    serving path.  :func:`check_wrapper` is exactly render + apply-all +
    this function; the compiled path reuses the same applications for
    extraction *and* health, so both stay bit-identical by construction.
    """
    cache = RecordDistanceCache(engine.config)
    outcomes: List[SectionHealth] = []
    for wrapper, instance in zip(engine.wrappers, instances):
        if instance is None:
            outcomes.append(
                SectionHealth(schema_id=wrapper.schema_id, found=False)
            )
            continue
        memo_key = (
            _section_dinr_key(engine.config, instance)
            if engine.config.fast_kernels and len(instance.records) >= 2
            else None
        )
        memoized = DINR_MEMO.get(memo_key) if memo_key is not None else None
        if memoized is not None:
            homogeneity = memoized
        else:
            homogeneity = inter_record_distance(
                instance.records, engine.config, cache
            )
            if memo_key is not None:
                DINR_MEMO.store(memo_key, homogeneity)
        outcomes.append(
            SectionHealth(
                schema_id=wrapper.schema_id,
                found=True,
                record_count=len(instance.records),
                typical_records=wrapper.typical_records,
                homogeneity=homogeneity,
                marker_hit=instance.score >= 1.0,
            )
        )

    obs.count("check.cache.hits", cache.hits)
    obs.count("check.cache.misses", cache.misses)
    if not outcomes:
        obs.count("check.pages_drifted")
        return WrapperHealth(sections=(), score=0.0)

    score = 0.0
    for health in outcomes:
        obs.count("check.sections")
        if health.healthy:
            score += 1.0
            obs.count("check.sections_healthy")
        elif not health.found:
            score += 0.4  # absence can be legitimate (query dependence)
            obs.count("check.sections_absent")
        else:
            obs.count("check.sections_suspect")
    score /= len(outcomes)
    health = WrapperHealth(sections=tuple(outcomes), score=score)
    if health.drifted:
        obs.count("check.pages_drifted")
    return health


def check_wrapper_on_pages(
    engine: EngineWrapper, pages: List[Tuple[str, str]]
) -> float:
    """Mean health score over several (markup, query) pages."""
    if not pages:
        return 0.0
    total = sum(check_wrapper(engine, markup, query).score for markup, query in pages)
    return total / len(pages)
