"""MSE — the wrapper-generation orchestrator (paper §3, steps 1-9).

Input: *n* sample result pages of one search engine (with the queries
that produced them).  Output: an :class:`EngineWrapper` that extracts all
dynamic sections and their records from any result page of that engine.

    >>> from repro import build_wrapper
    >>> wrapper = build_wrapper([(html1, "query one"), (html2, "query two")])
    >>> extraction = wrapper.extract(new_html, "another query")
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.dse import DynamicSection, run_dse
from repro.core.family import SectionFamily, build_families
from repro.core.granularity import resolve_granularity
from repro.core.grouping import MATCH_THRESHOLD, group_section_instances
from repro.core.mining import mine_records
from repro.core.model import SectionInstance
from repro.core.mre import TentativeMR, extract_mrs
from repro.core.refine import refine_page
from repro.core.wrapper import EngineWrapper, SectionWrapper, build_section_wrapper
from repro.features.blocks import Block
from repro.features.config import DEFAULT_CONFIG, FeatureConfig
from repro.features.record_distance import RecordDistanceCache
from repro.htmlmod.parser import parse_html
from repro.render.layout import render_page
from repro.render.lines import RenderedPage


@dataclass(frozen=True)
class MSEConfig:
    """Configuration of the MSE pipeline.

    The boolean switches exist for the ablation benches; the paper's full
    system corresponds to the defaults.
    """

    features: FeatureConfig = DEFAULT_CONFIG
    #: stable-marriage no-match threshold for instance grouping (§5.6)
    match_threshold: float = MATCH_THRESHOLD
    #: build section families for hidden sections (§5.8)
    use_families: bool = True
    #: run MR/DS refinement (§5.3); off = trust raw MRs and mine raw DSs
    use_refinement: bool = True
    #: run the granularity pass (§5.5)
    use_granularity: bool = True
    #: 'cohesion' (Formula 7, §5.4) or 'per-child' (plain tag heuristics)
    mining_strategy: str = "cohesion"


SampleInput = Union[str, Tuple[str, str]]


@dataclass
class _PreparedPage:
    page: RenderedPage
    query: str


class MSE:
    """Multiple Section Extraction: builds wrappers from sample pages."""

    def __init__(self, config: Optional[MSEConfig] = None) -> None:
        self.config = config or MSEConfig()

    # -- public API -----------------------------------------------------
    def build_wrapper(self, samples: Sequence[SampleInput]) -> EngineWrapper:
        """Induce an engine wrapper from sample result pages.

        Each sample is either an HTML string or an ``(html, query)`` pair;
        at least two samples are required (section instances must be
        certified by a match on another page, §5.6).
        """
        prepared = self._prepare(samples)
        if len(prepared) < 2:
            raise ValueError("MSE needs at least two sample pages")

        sections_per_page = self.analyze_pages(prepared)
        groups = group_section_instances(
            sections_per_page, threshold=self.config.match_threshold
        )

        wrappers: List[SectionWrapper] = []
        for index, group in enumerate(groups):
            wrapper = build_section_wrapper(
                group, schema_id=f"S{index}", config=self.config.features
            )
            if wrapper is not None:
                wrappers.append(wrapper)

        families: List[SectionFamily] = []
        if self.config.use_families:
            families, _leftover = build_families(wrappers)
            # All wrappers stay available: at extraction time a member
            # wrapper runs only when its family did not locate it.
        return EngineWrapper(wrappers, families, self.config.features)

    # -- pipeline pieces (public for tests/ablations) ----------------------
    def analyze_pages(
        self, prepared: Sequence[_PreparedPage]
    ) -> List[List[SectionInstance]]:
        """Steps 2-6 for every sample page: MRE, DSE, refine, mine, check."""
        config = self.config.features
        pages = [item.page for item in prepared]
        queries = [item.query for item in prepared]

        caches = [RecordDistanceCache(config) for _ in pages]
        mrs_per_page: List[List[TentativeMR]] = [
            extract_mrs(page, config, cache) for page, cache in zip(pages, caches)
        ]
        csbms_per_page, dss_per_page = run_dse(pages, queries, mrs_per_page)

        sections_per_page: List[List[SectionInstance]] = []
        for page, mrs, dss, csbms, cache in zip(
            pages, mrs_per_page, dss_per_page, csbms_per_page, caches
        ):
            sections = self._page_sections(page, mrs, dss, csbms, cache)
            sections_per_page.append(sections)
        return sections_per_page

    def _page_sections(
        self,
        page: RenderedPage,
        mrs: List[TentativeMR],
        dss: List[DynamicSection],
        csbms,
        cache: RecordDistanceCache,
    ) -> List[SectionInstance]:
        config = self.config.features

        if self.config.use_refinement:
            result = refine_page(page, mrs, dss, csbms, config, cache)
            sections = list(result.sections)
            pending = result.pending
        else:
            # Ablation: trust raw MRs, mine every DS that has no MR.
            sections = [
                SectionInstance(
                    page=page,
                    block=mr.block(),
                    records=list(mr.records),
                    origin="mre-raw",
                )
                for mr in mrs
            ]
            pending = [
                ds
                for ds in dss
                if not any(mr.start <= ds.end and ds.start <= mr.end for mr in mrs)
            ]

        for ds in pending:
            block = ds.block()
            records = self._mine(block, cache)
            sections.append(
                SectionInstance(
                    page=page,
                    block=block,
                    records=records,
                    lbm=ds.lbm,
                    rbm=ds.rbm,
                    origin="mined",
                )
            )
        sections.sort(key=lambda s: s.start)

        if self.config.use_granularity:
            sections = resolve_granularity(sections, config, cache)
        return sections

    def _mine(self, block: Block, cache: RecordDistanceCache) -> List[Block]:
        if self.config.mining_strategy == "per-child":
            from repro.core.mining import candidate_partitions

            candidates = candidate_partitions(block, self.config.features)
            # plain heuristic: the finest tag partition, no cohesion scoring
            return max(candidates, key=len)
        return mine_records(block, self.config.features, cache)

    # -- helpers ------------------------------------------------------------
    @staticmethod
    def _prepare(samples: Sequence[SampleInput]) -> List[_PreparedPage]:
        prepared: List[_PreparedPage] = []
        for sample in samples:
            if isinstance(sample, tuple):
                markup, query = sample
            else:
                markup, query = sample, ""
            page = render_page(parse_html(markup))
            prepared.append(_PreparedPage(page=page, query=query))
        return prepared


def build_wrapper(
    samples: Sequence[SampleInput], config: Optional[MSEConfig] = None
) -> EngineWrapper:
    """Convenience one-shot wrapper induction (see :class:`MSE`)."""
    return MSE(config).build_wrapper(samples)
