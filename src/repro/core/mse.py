"""MSE — the wrapper-generation orchestrator (paper §3, steps 1-9).

Input: *n* sample result pages of one search engine (with the queries
that produced them).  Output: an :class:`EngineWrapper` that extracts all
dynamic sections and their records from any result page of that engine.

    >>> from repro import build_wrapper
    >>> wrapper = build_wrapper([(html1, "query one"), (html2, "query two")])
    >>> extraction = wrapper.extract(new_html, "another query")

The pipeline runs as explicit *stages*, each wrapped in an observability
span (``render``, ``mre``, ``dse``, ``refine``, ``mine``,
``granularity``, ``grouping``, ``wrapper``, ``families`` — see
``repro.obs``).  Pass an :class:`repro.obs.Observer` to attribute wall
time and stage counters; the default :data:`~repro.obs.NULL_OBSERVER`
makes every probe a no-op.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.core.dse import DynamicSection, run_dse
from repro.core.family import SectionFamily, build_families
from repro.core.granularity import resolve_granularity
from repro.core.grouping import MATCH_THRESHOLD, group_section_instances
from repro.core.mining import mine_records
from repro.core.model import SectionInstance
from repro.core.mre import TentativeMR, extract_mrs
from repro.core.refine import refine_page
from repro.core.wrapper import EngineWrapper, SectionWrapper, build_section_wrapper
from repro.features.blocks import Block
from repro.features.config import DEFAULT_CONFIG, FeatureConfig
from repro.features.record_distance import RecordDistanceCache
from repro.htmlmod.parser import parse_html
from repro.obs import NULL_OBSERVER, ObserverLike
from repro.perf.kernels import observe_kernel_gauges
from repro.render.layout import render_page
from repro.render.lines import RenderedPage


@dataclass(frozen=True)
class MSEConfig:
    """Configuration of the MSE pipeline.

    The boolean switches exist for the ablation benches; the paper's full
    system corresponds to the defaults.
    """

    features: FeatureConfig = DEFAULT_CONFIG
    #: stable-marriage no-match threshold for instance grouping (§5.6)
    match_threshold: float = MATCH_THRESHOLD
    #: build section families for hidden sections (§5.8)
    use_families: bool = True
    #: run MR/DS refinement (§5.3); off = trust raw MRs and mine raw DSs
    use_refinement: bool = True
    #: run the granularity pass (§5.5)
    use_granularity: bool = True
    #: 'cohesion' (Formula 7, §5.4) or 'per-child' (plain tag heuristics)
    mining_strategy: str = "cohesion"


SampleInput = Union[str, Tuple[str, str]]


@dataclass
class _PreparedPage:
    page: RenderedPage
    query: str


def _cache_totals(caches: Sequence[RecordDistanceCache]) -> Tuple[int, int]:
    return (
        sum(cache.hits for cache in caches),
        sum(cache.misses for cache in caches),
    )


class MSE:
    """Multiple Section Extraction: builds wrappers from sample pages."""

    def __init__(
        self, config: Optional[MSEConfig] = None, obs: ObserverLike = NULL_OBSERVER
    ) -> None:
        self.config = config or MSEConfig()
        self.obs = obs if obs is not None else NULL_OBSERVER

    # -- public API -----------------------------------------------------
    def build_wrapper(self, samples: Sequence[SampleInput]) -> EngineWrapper:
        """Induce an engine wrapper from sample result pages.

        Each sample is either an HTML string or an ``(html, query)`` pair;
        at least two samples are required (section instances must be
        certified by a match on another page, §5.6).
        """
        obs = self.obs
        with obs.span("render"):
            prepared = self._prepare(samples)
            obs.count("render.pages", len(prepared))
            obs.count(
                "render.lines", sum(len(item.page.lines) for item in prepared)
            )
        if len(prepared) < 2:
            raise ValueError("MSE needs at least two sample pages")

        sections_per_page = self.analyze_pages(prepared)

        with obs.span("grouping"):
            groups = group_section_instances(
                sections_per_page, threshold=self.config.match_threshold, obs=obs
            )

        with obs.span("wrapper"):
            wrappers: List[SectionWrapper] = []
            for index, group in enumerate(groups):
                wrapper = build_section_wrapper(
                    group, schema_id=f"S{index}", config=self.config.features, obs=obs
                )
                if wrapper is not None:
                    wrappers.append(wrapper)
            obs.count("wrapper.schemas", len(wrappers))

        families: List[SectionFamily] = []
        with obs.span("families"):
            if self.config.use_families:
                families, _leftover = build_families(wrappers, obs=obs)
                # All wrappers stay available: at extraction time a member
                # wrapper runs only when its family did not locate it.
            obs.count("families.built", len(families))
        return EngineWrapper(wrappers, families, self.config.features)

    # -- pipeline pieces (public for tests/ablations) ----------------------
    def analyze_pages(
        self, prepared: Sequence[_PreparedPage]
    ) -> List[List[SectionInstance]]:
        """Steps 2-6 for every sample page: MRE, DSE, refine, mine, check.

        Runs stage-by-stage over all pages (rather than page-by-page over
        all stages) so each stage owns exactly one span and its counters.
        """
        config = self.config.features
        obs = self.obs
        pages = [item.page for item in prepared]
        queries = [item.query for item in prepared]
        caches = [RecordDistanceCache(config) for _ in pages]

        with self._stage("mre", caches):
            mrs_per_page: List[List[TentativeMR]] = [
                extract_mrs(page, config, cache)
                for page, cache in zip(pages, caches)
            ]
            obs.count("mre.sections", sum(len(mrs) for mrs in mrs_per_page))
            obs.count(
                "mre.records",
                sum(len(mr.records) for mrs in mrs_per_page for mr in mrs),
            )

        with self._stage("dse", caches):
            csbms_per_page, dss_per_page = run_dse(
                pages, queries, mrs_per_page, obs=obs
            )

        refined, pending_per_page = self._refine_stage(
            pages, mrs_per_page, dss_per_page, csbms_per_page, caches
        )
        sections_per_page = self._mine_stage(
            pages, refined, pending_per_page, caches
        )
        sections_per_page = self._granularity_stage(sections_per_page, caches)

        hits, misses = _cache_totals(caches)
        obs.gauge("record_distance_cache.hits", hits)
        obs.gauge("record_distance_cache.misses", misses)
        obs.gauge(
            "record_distance_cache.hit_rate",
            hits / (hits + misses) if hits + misses else 0.0,
        )
        div_hits = sum(cache.diversity_hits for cache in caches)
        div_misses = sum(cache.diversity_misses for cache in caches)
        obs.gauge("diversity_cache.hits", div_hits)
        obs.gauge("diversity_cache.misses", div_misses)
        obs.gauge(
            "diversity_cache.hit_rate",
            div_hits / (div_hits + div_misses) if div_hits + div_misses else 0.0,
        )
        observe_kernel_gauges(obs)
        return sections_per_page

    @contextmanager
    def _stage(
        self, name: str, caches: Sequence[RecordDistanceCache]
    ) -> Iterator[None]:
        """A pipeline-stage span that also books the stage's share of the
        record-distance cache traffic as ``cache.hits`` / ``cache.misses``
        counters."""
        obs = self.obs
        with obs.span(name):
            hits_before, misses_before = _cache_totals(caches)
            try:
                yield
            finally:
                hits_after, misses_after = _cache_totals(caches)
                if hits_after > hits_before:
                    obs.count("cache.hits", hits_after - hits_before)
                if misses_after > misses_before:
                    obs.count("cache.misses", misses_after - misses_before)

    def _refine_stage(
        self,
        pages: Sequence[RenderedPage],
        mrs_per_page: Sequence[List[TentativeMR]],
        dss_per_page: Sequence[List[DynamicSection]],
        csbms_per_page: Sequence[Set[int]],
        caches: Sequence[RecordDistanceCache],
    ) -> Tuple[List[List[SectionInstance]], List[List[DynamicSection]]]:
        """§5.3 refinement (or the ablation bypass) for every page."""
        config = self.config.features
        obs = self.obs
        refined: List[List[SectionInstance]] = []
        pending_per_page: List[List[DynamicSection]] = []

        with self._stage("refine", caches):
            for page, mrs, dss, csbms, cache in zip(
                pages, mrs_per_page, dss_per_page, csbms_per_page, caches
            ):
                if self.config.use_refinement:
                    result = refine_page(page, mrs, dss, csbms, config, cache, obs=obs)
                    sections = list(result.sections)
                    pending = result.pending
                else:
                    # Ablation: trust raw MRs, mine every DS that has no MR.
                    sections = [
                        SectionInstance(
                            page=page,
                            block=mr.block(),
                            records=list(mr.records),
                            origin="mre-raw",
                        )
                        for mr in mrs
                    ]
                    pending = [
                        ds
                        for ds in dss
                        if not any(
                            mr.start <= ds.end and ds.start <= mr.end for mr in mrs
                        )
                    ]
                refined.append(sections)
                pending_per_page.append(pending)
            obs.count(
                "refine.sections", sum(len(sections) for sections in refined)
            )
            obs.count(
                "refine.pending",
                sum(len(pending) for pending in pending_per_page),
            )
        return refined, pending_per_page

    def _mine_stage(
        self,
        pages: Sequence[RenderedPage],
        refined: Sequence[List[SectionInstance]],
        pending_per_page: Sequence[List[DynamicSection]],
        caches: Sequence[RecordDistanceCache],
    ) -> List[List[SectionInstance]]:
        """§5.4 record mining of every pending DS, per page."""
        obs = self.obs
        sections_per_page: List[List[SectionInstance]] = []

        with self._stage("mine", caches):
            mined_records = 0
            for page, sections, pending, cache in zip(
                pages, refined, pending_per_page, caches
            ):
                sections = list(sections)
                for ds in pending:
                    block = ds.block()
                    records = self._mine(block, cache)
                    mined_records += len(records)
                    sections.append(
                        SectionInstance(
                            page=page,
                            block=block,
                            records=records,
                            lbm=ds.lbm,
                            rbm=ds.rbm,
                            origin="mined",
                        )
                    )
                sections.sort(key=lambda s: s.start)
                sections_per_page.append(sections)
            obs.count("mine.records", mined_records)
        return sections_per_page

    def _granularity_stage(
        self,
        sections_per_page: List[List[SectionInstance]],
        caches: Sequence[RecordDistanceCache],
    ) -> List[List[SectionInstance]]:
        """§5.5 granularity resolution, per page (no-op when disabled)."""
        config = self.config.features
        obs = self.obs
        with self._stage("granularity", caches):
            if self.config.use_granularity:
                sections_per_page = [
                    resolve_granularity(sections, config, cache, obs=obs)
                    for sections, cache in zip(sections_per_page, caches)
                ]
            obs.count(
                "granularity.sections",
                sum(len(sections) for sections in sections_per_page),
            )
        return sections_per_page

    def _mine(self, block: Block, cache: RecordDistanceCache) -> List[Block]:
        if self.config.mining_strategy == "per-child":
            from repro.core.mining import candidate_partitions

            candidates = candidate_partitions(block, self.config.features)
            # plain heuristic: the finest tag partition, no cohesion scoring
            return max(candidates, key=len)
        return mine_records(block, self.config.features, cache, obs=self.obs)

    # -- helpers ------------------------------------------------------------
    @staticmethod
    def _prepare(samples: Sequence[SampleInput]) -> List[_PreparedPage]:
        prepared: List[_PreparedPage] = []
        for sample in samples:
            if isinstance(sample, tuple):
                markup, query = sample
            else:
                markup, query = sample, ""
            page = render_page(parse_html(markup))
            prepared.append(_PreparedPage(page=page, query=query))
        return prepared


def build_wrapper(
    samples: Sequence[SampleInput],
    config: Optional[MSEConfig] = None,
    obs: ObserverLike = NULL_OBSERVER,
) -> EngineWrapper:
    """Convenience one-shot wrapper induction (see :class:`MSE`)."""
    return MSE(config, obs=obs).build_wrapper(samples)
