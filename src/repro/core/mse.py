"""MSE — the wrapper-generation orchestrator (paper §3, steps 1-9).

Input: *n* sample result pages of one search engine (with the queries
that produced them).  Output: an :class:`EngineWrapper` that extracts all
dynamic sections and their records from any result page of that engine.

    >>> from repro import build_wrapper
    >>> wrapper = build_wrapper([(html1, "query one"), (html2, "query two")])
    >>> extraction = wrapper.extract(new_html, "another query")

Since the staged refactor, this class is a façade over
:mod:`repro.pipeline`: the steps are :class:`~repro.pipeline.Stage`
objects executed by a :class:`~repro.pipeline.PipelineRunner` on one
:class:`~repro.pipeline.InductionContext`.  That buys, with no API
change here:

- ``jobs=N`` — per-page stages (MRE, refinement, mining, granularity)
  fan out over a process pool; cross-page barriers (DSE, grouping,
  wrapper construction, families) stay serial.  Wrappers are
  bit-identical to a serial run.
- ``checkpoint_dir=...`` / ``resume=True`` — every stage's artifacts are
  persisted as JSON and a resumed run recomputes only missing stages
  (and their dependents), including after adding sample pages.

Each stage runs in an observability span (``render``, ``mre``, ``dse``,
``refine``, ``mine``, ``granularity``, ``grouping``, ``wrapper``,
``families`` — see ``repro.obs``).  Pass an :class:`repro.obs.Observer`
to attribute wall time and stage counters; the default
:data:`~repro.obs.NULL_OBSERVER` makes every probe a no-op.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.mining import mine_block
from repro.core.model import SectionInstance
from repro.core.mse_config import MSEConfig
from repro.core.wrapper import EngineWrapper
from repro.features.blocks import Block
from repro.features.record_distance import RecordDistanceCache
from repro.htmlmod.parser import parse_html
from repro.obs import NULL_OBSERVER, ObserverLike
from repro.perf.kernels import observe_kernel_gauges
from repro.pipeline.context import InductionContext, SampleInput
from repro.render.layout import render_page
from repro.render.lines import RenderedPage

__all__ = ["MSE", "MSEConfig", "SampleInput", "build_wrapper"]


@dataclass
class _PreparedPage:
    page: RenderedPage
    query: str


class MSE:
    """Multiple Section Extraction: builds wrappers from sample pages."""

    def __init__(
        self,
        config: Optional[MSEConfig] = None,
        obs: ObserverLike = NULL_OBSERVER,
        jobs: int = 1,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
    ) -> None:
        self.config = config or MSEConfig()
        self.obs = obs if obs is not None else NULL_OBSERVER
        self.jobs = max(1, jobs)
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume

    # -- public API -----------------------------------------------------
    def build_wrapper(self, samples: Sequence[SampleInput]) -> EngineWrapper:
        """Induce an engine wrapper from sample result pages.

        Each sample is either an HTML string or an ``(html, query)`` pair;
        at least two samples are required (section instances must be
        certified by a match on another page, §5.6).
        """
        from repro.pipeline import (
            ArtifactStore,
            PipelineRunner,
            induction_stages,
        )

        if len(samples) < 2:
            raise ValueError("MSE needs at least two sample pages")
        ctx = InductionContext.from_samples(samples, self.config, self.obs)

        store = None
        if self.checkpoint_dir is not None:
            ids = ctx.page_ids()
            if ids is not None:
                store = ArtifactStore.open(
                    self.checkpoint_dir, self.config, ids, resume=self.resume
                )
        runner = PipelineRunner(jobs=self.jobs, store=store)
        runner.run(ctx, induction_stages(self.select_sections))
        self._observe_run(ctx)
        engine: EngineWrapper = ctx.engine
        return engine

    # -- pipeline pieces (public for tests/ablations) ----------------------
    def analyze_pages(
        self, prepared: Sequence[_PreparedPage]
    ) -> List[List[SectionInstance]]:
        """Steps 2-6 for every sample page: MRE, DSE, refine, mine, check.

        Runs stage-by-stage over all pages (rather than page-by-page over
        all stages) so each stage owns exactly one span and its counters.
        Works over pre-rendered pages, so it always runs serially and
        without checkpoints (those need the sample HTML for identity).
        """
        from repro.pipeline import PipelineRunner, analysis_stages

        ctx = InductionContext.from_pages(
            [item.page for item in prepared],
            [item.query for item in prepared],
            self.config,
            self.obs,
        )
        PipelineRunner(jobs=1).run(ctx, analysis_stages())
        self._observe_run(ctx)
        return self.select_sections(ctx.sections_per_page)

    def select_sections(
        self, sections_per_page: List[List[SectionInstance]]
    ) -> List[List[SectionInstance]]:
        """Hook between per-page analysis and cross-page grouping.

        The full system groups every section instance; baselines override
        this to restrict the candidate set (e.g. the single-section ViNTs
        baseline keeps only each page's main section).  Returning the
        argument unchanged (the default) keeps downstream stage caches
        valid on resumed runs.
        """
        return sections_per_page

    def _mine(self, block: Block, cache: RecordDistanceCache) -> List[Block]:
        """Strategy-dispatched record mining of one DS block (§5.4)."""
        return mine_block(
            block,
            self.config.mining_strategy,
            self.config.features,
            cache,
            obs=self.obs,
        )

    def _observe_run(self, ctx: InductionContext) -> None:
        """End-of-analysis cache/kernel gauges (trace + bench surface)."""
        obs = self.obs
        hits = sum(cache.hits for cache in ctx.caches)
        misses = sum(cache.misses for cache in ctx.caches)
        obs.gauge("record_distance_cache.hits", hits)
        obs.gauge("record_distance_cache.misses", misses)
        obs.gauge(
            "record_distance_cache.hit_rate",
            hits / (hits + misses) if hits + misses else 0.0,
        )
        div_hits = sum(cache.diversity_hits for cache in ctx.caches)
        div_misses = sum(cache.diversity_misses for cache in ctx.caches)
        obs.gauge("diversity_cache.hits", div_hits)
        obs.gauge("diversity_cache.misses", div_misses)
        obs.gauge(
            "diversity_cache.hit_rate",
            div_hits / (div_hits + div_misses) if div_hits + div_misses else 0.0,
        )
        observe_kernel_gauges(obs)

    # -- helpers ------------------------------------------------------------
    @staticmethod
    def _prepare(samples: Sequence[SampleInput]) -> List[_PreparedPage]:
        prepared: List[_PreparedPage] = []
        for sample in samples:
            if isinstance(sample, tuple):
                markup, query = sample
            else:
                markup, query = sample, ""
            page = render_page(parse_html(markup))
            prepared.append(_PreparedPage(page=page, query=query))
        return prepared


def build_wrapper(
    samples: Sequence[SampleInput],
    config: Optional[MSEConfig] = None,
    obs: ObserverLike = NULL_OBSERVER,
    jobs: int = 1,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
) -> EngineWrapper:
    """Convenience one-shot wrapper induction (see :class:`MSE`)."""
    return MSE(
        config,
        obs=obs,
        jobs=jobs,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    ).build_wrapper(samples)
