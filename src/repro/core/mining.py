"""Record mining from dynamic sections (paper §5.4).

A DS is a run of content lines with no identified records.  Candidate
*tag-forest separators* — following [29] — are derived from the top-level
children of the DS's minimum subtree; each candidate induces a partition
of the DS's lines into records, the degenerate whole-DS-as-one-record
partition is always included, and the partition with the highest *section
cohesion* (Formula 7) wins.

Because the single-record partition competes on equal terms, the miner
can find the only record of a one-record DS — the property the paper
highlights over prior work that needs two or more records.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.features.blocks import Block, partition_block
from repro.features.cohesion import best_partition
from repro.features.config import DEFAULT_CONFIG, FeatureConfig
from repro.features.record_distance import RecordDistanceCache
from repro.htmlmod.dom import Element
from repro.obs import NULL_OBSERVER, ObserverLike
from repro.render.linetypes import LineType

#: Line types that can plausibly open a record (shared with MRE).
_START_TYPES = frozenset(
    {LineType.LINK, LineType.LINK_TEXT, LineType.IMAGE_TEXT}
)


def _children_line_ranges(
    block: Block,
) -> List[Tuple[Element, int, int]]:
    """Top-level children of the block's minimum subtree with line ranges.

    Only children rendering at least one line inside the block are
    reported; ranges are clipped to the block.
    """
    subtree = block.page.span_subtree(block.start, block.end)
    if subtree is None:
        return []
    out: List[Tuple[Element, int, int]] = []
    for child in subtree.children:
        if not isinstance(child, Element):
            continue
        found = block.page.line_range_of_element(child)
        if found is None:
            continue
        first, last = found
        if last < block.start or first > block.end:
            continue
        out.append((child, max(first, block.start), min(last, block.end)))
    return out


def candidate_partitions(
    block: Block, config: FeatureConfig = DEFAULT_CONFIG
) -> List[List[Block]]:
    """All candidate record partitions of a DS block.

    Candidates, deduplicated by their boundary sets:

    - the whole block as a single record;
    - one record per top-level child of the minimum subtree;
    - for each distinct child tag ``t``: a new record starts at each
      child tagged ``t`` (the "separator" reading — e.g. every ``<dt>``
      in a ``<dl>``, every ``<a>`` in ``<br>``-separated flat content).
    """
    children = _children_line_ranges(block)

    candidates: List[List[Block]] = []
    seen: Set[Tuple[int, ...]] = set()

    def add(boundaries: Sequence[int]) -> None:
        usable = sorted({b for b in boundaries if block.start < b <= block.end})
        key = tuple(usable)
        if key in seen:
            return
        seen.add(key)
        candidates.append(partition_block(block, usable))

    add([])  # whole block = one record

    if children:
        per_child = [first for _, first, _ in children]
        add(per_child)

        tags = {child.tag for child, _, _ in children}
        for tag in sorted(tags):
            starts = [first for child, first, _ in children if child.tag == tag]
            if starts:
                add(starts)

    # Title-anchored partition: records open at title-ish lines at the
    # leftmost position of the DS (needed for flat markup where records
    # have no wrapper element at all).
    add(_title_start_lines(block))

    return candidates


def _title_start_lines(block: Block) -> List[int]:
    title_lines = [line for line in block.lines if line.line_type in _START_TYPES]
    if not title_lines:
        return []
    min_x = min(line.position for line in title_lines)
    return [line.number for line in title_lines if line.position == min_x]


def _uniform_starts(records: Sequence[Block]) -> bool:
    """Separator evidence: every record opens with the same kind of line.

    True when all records' first lines are title-ish, share one position
    code, and have pairwise-compatible tag paths — overwhelming evidence
    of a repeating record structure, even when the records' *bodies* vary
    (optional snippets make body-based cohesion unreliable).
    """
    firsts = [record.lines[0] for record in records]
    if any(line.line_type not in _START_TYPES for line in firsts):
        return False
    if len({line.position for line in firsts}) != 1:
        return False
    base = firsts[0].tag_path
    return all(line.tag_path.compatible(base) for line in firsts[1:])


def mine_records(
    block: Block,
    config: FeatureConfig = DEFAULT_CONFIG,
    cache: Optional[RecordDistanceCache] = None,
    obs: ObserverLike = NULL_OBSERVER,
) -> List[Block]:
    """Partition a DS block into records (§5.4).

    Multi-record partitions backed by separator evidence (see
    :func:`_uniform_starts`) are preferred; among those — and otherwise
    among all candidates — the partition with the highest section
    cohesion (Formula 7) wins.  Sections whose records share no common
    opening line (and true single-record DSs) fall through to the pure
    cohesion criterion, which then correctly favours the whole-DS record.
    """
    if cache is None:
        cache = RecordDistanceCache(config)
    candidates = candidate_partitions(block, config)
    obs.count("mine.calls")
    obs.count("mine.candidate_partitions", len(candidates))
    evidenced = [p for p in candidates if len(p) >= 2 and _has_start_evidence(p)]
    if evidenced:
        obs.count("mine.evidenced")
        return best_partition(evidenced, config, cache)
    return best_partition(candidates, config, cache)


def mine_block(
    block: Block,
    strategy: str,
    config: FeatureConfig = DEFAULT_CONFIG,
    cache: Optional[RecordDistanceCache] = None,
    obs: ObserverLike = NULL_OBSERVER,
) -> List[Block]:
    """Mining-strategy dispatch used by the pipeline's mine stage.

    ``strategy`` is :attr:`repro.core.mse_config.MSEConfig.mining_strategy`:
    ``"cohesion"`` runs the paper's Formula-7 miner (:func:`mine_records`);
    ``"per-child"`` is the ablation heuristic that takes the finest tag
    partition with no cohesion scoring.  A degenerate block that yields no
    candidate partitions falls back to the whole block as one record
    rather than crashing on ``max()`` of an empty sequence.
    """
    if strategy == "per-child":
        candidates = candidate_partitions(block, config)
        if not candidates:
            return [block]
        return max(candidates, key=len)
    return mine_records(block, config, cache, obs=obs)


def _has_start_evidence(partition: Sequence[Block]) -> bool:
    """Uniform starts, allowing the first record to be an outlier.

    A DS may open with a non-record prefix (a divider image, a stray
    label) that mining keeps as a leading piece; the remaining records
    still constitute separator evidence.
    """
    if _uniform_starts(partition):
        return True
    return len(partition) >= 3 and _uniform_starts(partition[1:])


def separator_tag_of(records: Sequence[Block]) -> Optional[str]:
    """The child tag at which the records of a section start, if uniform.

    Used by wrapper construction (§5.7): maps each record's first line
    back to the top-level child of the section subtree containing it; if
    all records start at children of one tag, that tag is the separator.
    """
    if not records:
        return None
    page = records[0].page
    start = records[0].start
    end = records[-1].end
    subtree = page.span_subtree(start, end)
    if subtree is None:
        return None

    child_of_line: Dict[int, Element] = {}
    for child in subtree.children:
        if not isinstance(child, Element):
            continue
        found = page.line_range_of_element(child)
        if found is None:
            continue
        for number in range(found[0], found[1] + 1):
            child_of_line.setdefault(number, child)

    tags: Set[str] = set()
    for record in records:
        child = child_of_line.get(record.start)
        if child is None:
            return None
        tags.add(child.tag)
    if len(tags) == 1:
        return tags.pop()
    return None
