"""MRE — multi-record section extraction (paper §5.1).

A ViNTs-style visual pattern miner.  For one rendered page it finds all
*multi-record sections* (MRs): maximal runs of three or more visually
similar, consecutive candidate records.

Outline (following §5.1):

1. every content line gets a visual signature (type code, position code);
2. signatures occurring three or more times are candidate record-start
   patterns; each partitions the nearby lines into candidate record
   blocks, with the pattern line leading each block;
3. a run of consecutive candidate records is kept while the records stay
   visually similar (``Drec`` against the run) and their first-line tag
   paths stay compatible — runs of >= 3 records become *tentative MRs*;
4. tentative MRs from different signatures that cover much the same
   screen area are grouped, and the best MR of each group (most records,
   then lowest internal distance) is emitted.

Known limitations, by design (§5.1 lists them; later MSE stages repair
them): boundary records may be wrong, sections with < 3 records are not
found, static repeating content is extracted too, and section/record
granularity may be wrong.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.features.blocks import Block
from repro.features.config import DEFAULT_CONFIG, FeatureConfig
from repro.features.record_distance import RecordDistanceCache
from repro.render.lines import ContentLine, RenderedPage
from repro.render.linetypes import LineType


@dataclass
class TentativeMR:
    """A candidate multi-record section produced by one signature run."""

    page: RenderedPage
    records: List[Block]

    @property
    def start(self) -> int:
        return self.records[0].start

    @property
    def end(self) -> int:
        return self.records[-1].end

    @property
    def span(self) -> int:
        return self.end - self.start + 1

    def block(self) -> Block:
        """The MR's full line span as one block."""
        return Block(self.page, self.start, self.end)

    def internal_distance(self, cache: RecordDistanceCache) -> float:
        """Mean consecutive record distance (0 for a single record)."""
        if len(self.records) < 2:
            return 0.0
        pairs = zip(self.records, self.records[1:])
        return sum(cache.distance(a, b) for a, b in pairs) / (len(self.records) - 1)


#: Maximum Drec between a candidate record and the nearest of the run's
#: recent records for the run to continue.  Records of one section may
#: alternate lengths (optional snippet/date lines), so each candidate is
#: compared against the last few records rather than only its neighbour.
#: Tuned on the test bed's training pages.
SIMILARITY_THRESHOLD = 0.55

#: How many trailing run records a candidate is compared against.
RUN_MEMORY = 3

#: Minimum records for MRE to report a section (the paper's "three or more").
MIN_RECORDS = 3

#: Two tentative MRs belong to the same screen-area group when their line
#: spans overlap by more than this fraction of the smaller span.
OVERLAP_FRACTION = 0.5


def _signature(line: ContentLine) -> Tuple[LineType, int]:
    return (line.line_type, line.position)


def _signature_occurrences(page: RenderedPage) -> Dict[Tuple[LineType, int], List[int]]:
    occurrences: Dict[Tuple[LineType, int], List[int]] = defaultdict(list)
    for line in page.lines:
        if line.line_type == LineType.HR:
            continue  # rules separate content; they never start records
        occurrences[_signature(line)].append(line.number)
    return occurrences


def _runs_from_occurrences(
    page: RenderedPage,
    starts: Sequence[int],
    cache: RecordDistanceCache,
    config: FeatureConfig,
) -> List[TentativeMR]:
    """Grow maximal similar runs of candidate records from pattern starts."""
    if len(starts) < MIN_RECORDS:
        return []

    # Interior candidate records end right before the next occurrence; the
    # final record's extent is guessed from the median interior length and
    # clipped to the page (boundary refinement corrects it later).
    blocks: List[Block] = []
    lengths: List[int] = []
    for i, begin in enumerate(starts[:-1]):
        end = starts[i + 1] - 1
        blocks.append(Block(page, begin, end))
        lengths.append(end - begin + 1)
    median_len = sorted(lengths)[len(lengths) // 2]
    last_end = min(starts[-1] + median_len - 1, len(page.lines) - 1)
    blocks.append(Block(page, starts[-1], last_end))

    runs: List[TentativeMR] = []
    current: List[Block] = [blocks[0]]
    base_path = page.lines[blocks[0].start].tag_path

    for block in blocks[1:]:
        path = page.lines[block.start].tag_path
        compatible = path.compatible(base_path)
        similar = (
            min(cache.distance(prev, block) for prev in current[-RUN_MEMORY:])
            <= SIMILARITY_THRESHOLD
        )
        adjacent = block.start == current[-1].end + 1
        if compatible and similar and adjacent:
            current.append(block)
        else:
            if len(current) >= MIN_RECORDS:
                runs.append(TentativeMR(page, current))
            current = [block]
            base_path = path
    if len(current) >= MIN_RECORDS:
        runs.append(TentativeMR(page, current))
    return runs


#: Line types that can plausibly open a record (title-ish lines).
_START_TYPES = frozenset(
    {LineType.LINK, LineType.LINK_TEXT, LineType.IMAGE_TEXT}
)


def _reanchor_records(mr: TentativeMR) -> TentativeMR:
    """Identify record first lines and realign block boundaries (§5.1).

    The repeating visual pattern MRE keyed on may sit at the *end* of each
    record (e.g. the snippet line), leaving every boundary off by a line
    or two.  Following ViNTs, the first line of a record is identified as
    a title-ish line (link-bearing or heading) at the leftmost position of
    the section area; when those first lines form a plausible boundary set
    the records are rebuilt on them.  A leading stub before the first
    detected start is cut off — the refinement stage grows the section
    back over it if it really belongs (§5.3).
    """
    page = mr.page
    span_lines = page.lines[mr.start : mr.end + 1]
    title_lines = [line for line in span_lines if line.line_type in _START_TYPES]
    if not title_lines:
        return mr
    min_x = min(line.position for line in title_lines)
    starts = [line.number for line in title_lines if line.position == min_x]
    if len(starts) < MIN_RECORDS:
        return mr
    if not (len(mr.records) - 1 <= len(starts) <= len(mr.records) + 1):
        return mr  # ambiguous signal; keep the original partition
    current_starts = [record.start for record in mr.records]
    if starts == current_starts:
        return mr

    records = []
    for i, begin in enumerate(starts):
        end = starts[i + 1] - 1 if i + 1 < len(starts) else mr.end
        records.append(Block(page, begin, end))
    return TentativeMR(page, records)


def _group_by_area(tentatives: List[TentativeMR]) -> List[List[TentativeMR]]:
    """Union-find grouping of MRs whose line spans overlap considerably."""
    parent = list(range(len(tentatives)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    for i, a in enumerate(tentatives):
        for j in range(i + 1, len(tentatives)):
            b = tentatives[j]
            overlap = min(a.end, b.end) - max(a.start, b.start) + 1
            if overlap > 0 and overlap / min(a.span, b.span) > OVERLAP_FRACTION:
                union(i, j)

    groups: Dict[int, List[TentativeMR]] = defaultdict(list)
    for i, mr in enumerate(tentatives):
        groups[find(i)].append(mr)
    return list(groups.values())


def _best_of_group(
    group: List[TentativeMR], cache: RecordDistanceCache
) -> TentativeMR:
    """Wrapper-selection rule: most records, then tightest, then widest."""

    def score(mr: TentativeMR) -> Tuple[int, float, int]:
        return (len(mr.records), -mr.internal_distance(cache), mr.span)

    return max(group, key=score)


def extract_mrs(
    page: RenderedPage,
    config: FeatureConfig = DEFAULT_CONFIG,
    cache: Optional[RecordDistanceCache] = None,
) -> List[TentativeMR]:
    """All multi-record sections of a page, in document order.

    The returned MRs may include static repeating content and imperfect
    boundaries; §5.3-§5.5 stages clean them up.
    """
    if cache is None:
        cache = RecordDistanceCache(config)

    tentatives: List[TentativeMR] = []
    for starts in _signature_occurrences(page).values():
        if len(starts) >= MIN_RECORDS:
            tentatives.extend(_runs_from_occurrences(page, starts, cache, config))

    if not tentatives:
        return []

    best = [
        _reanchor_records(_best_of_group(group, cache))
        for group in _group_by_area(tentatives)
    ]
    best.sort(key=lambda mr: mr.start)

    # Drop MRs fully contained in a larger selected MR (nested signatures).
    selected: List[TentativeMR] = []
    for mr in best:
        if any(o.start <= mr.start and mr.end <= o.end and o is not mr for o in best):
            continue
        selected.append(mr)
    return selected
