"""Section-record granularity resolution (paper §5.5).

Two error families survive refinement:

- **oversized records** — consecutive *sections* of identical format were
  glued into one MR as its "records", or several records were merged into
  one big record;
- **splitting records** — one large record was split into several small
  records, or each large record of a section was promoted to a section of
  its own.

The oversized check re-mines each large record; whether the mined pieces
imply "those were sections" is decided by the paper's boundary-structure
test: if the first mined piece of R2 (or the last of R1) is structurally
special — ``Davgrs > W * Dinr`` against the other record's pieces — a
separating structure exists and R1/R2 are sections.

The splitting check tries coarser partitions (pairs, triples, ... of
consecutive records) and keeps the partition with the highest cohesion;
then runs the sibling test: consecutive one-record sections whose
subtrees are siblings under one parent are rebuilt into a single section
with one record each.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.mining import _uniform_starts, mine_records
from repro.core.model import SectionInstance
from repro.features.blocks import Block
from repro.features.cohesion import inter_record_distance, section_cohesion
from repro.features.config import DEFAULT_CONFIG, FeatureConfig
from repro.features.record_distance import RecordDistanceCache
from repro.htmlmod.dom import Element
from repro.obs import NULL_OBSERVER, ObserverLike
from repro.render.lines import RenderedPage


def _davgrs(
    block: Block, group: Sequence[Block], cache: RecordDistanceCache
) -> float:
    return cache.average_to_group(block, list(group))


def _boundary_is_special(
    smalls1: List[Block],
    smalls2: List[Block],
    config: FeatureConfig,
    cache: RecordDistanceCache,
) -> bool:
    """The §5.5 test on the pieces of two consecutive oversized records.

    True when the piece adjacent to the R1/R2 boundary is structurally
    unlike the pieces on the other side — i.e. a separating structure
    (an SBM-like row, a divider) exists, so R1 and R2 are sections.
    """
    if not smalls1 or not smalls2:
        return False
    w = config.refine_w
    dinr1 = max(inter_record_distance(smalls1, config, cache), config.dinr_floor)
    dinr2 = max(inter_record_distance(smalls2, config, cache), config.dinr_floor)
    first_of_r2 = smalls2[0]
    last_of_r1 = smalls1[-1]
    return (
        _davgrs(first_of_r2, smalls1, cache) > w * dinr1
        or _davgrs(last_of_r1, smalls2, cache) > w * dinr2
    )


def _fix_oversized(
    section: SectionInstance,
    config: FeatureConfig,
    cache: RecordDistanceCache,
    obs: ObserverLike = NULL_OBSERVER,
) -> List[SectionInstance]:
    """Oversized-record handling; may split one section into several."""
    records = section.records
    if not records:
        return [section]

    largest = max(records, key=len)
    if len(largest) <= 1:
        return [section]
    if len(mine_records(largest, config, cache, obs=obs)) <= 1:
        return [section]  # the big record does not decompose: fine as is

    # Every record decomposes (or not); gather the pieces.
    pieces_per_record = [
        mine_records(r, config, cache, obs=obs) if len(r) > 1 else [r]
        for r in records
    ]

    # Decide sections-vs-merged-records on the consecutive pairs where
    # both sides decomposed.
    looks_like_sections = False
    for left, right in zip(pieces_per_record, pieces_per_record[1:]):
        if len(left) > 1 or len(right) > 1:
            if _boundary_is_special(left, right, config, cache):
                looks_like_sections = True
                break

    if looks_like_sections:
        obs.count("granularity.sections_split")
        out = []
        for record, pieces in zip(records, pieces_per_record):
            out.append(
                SectionInstance(
                    page=section.page,
                    block=record,
                    records=pieces,
                    lbm=None,
                    rbm=None,
                    origin="granularity-split",
                )
            )
        if out:
            out[0].lbm = section.lbm
            out[-1].rbm = section.rbm
        return out

    flattened = [piece for pieces in pieces_per_record for piece in pieces]
    # Only adopt the finer reading when it actually scores better.
    if section_cohesion(flattened, config, cache) > section_cohesion(
        records, config, cache
    ):
        section.records = flattened
        section.origin = section.origin + "+remined"
        obs.count("granularity.records_remined")
    return [section]


def _fix_split_records(
    section: SectionInstance,
    config: FeatureConfig,
    cache: RecordDistanceCache,
    obs: ObserverLike = NULL_OBSERVER,
) -> None:
    """Try coarser partitions (combine k consecutive records) in place."""
    records = section.records
    n = len(records)
    if n < 2:
        return
    if _uniform_starts(records):
        # Every record opens with the same title-ish line: the partition
        # is separator-backed, and coarser groupings would be the very
        # oversized-record error this pass exists to avoid.
        return

    page = section.page
    best = records
    best_score = section_cohesion(records, config, cache)
    for k in range(2, n + 1):
        if n % k != 0:
            continue  # uneven groupings would misalign every later record
        combined: List[Block] = []
        for i in range(0, n, k):
            chunk = records[i : i + k]
            combined.append(Block(page, chunk[0].start, chunk[-1].end))
        score = section_cohesion(combined, config, cache)
        if score > best_score:
            best, best_score = combined, score
    if best is not records:
        section.records = best
        section.origin = section.origin + "+combined"
        obs.count("granularity.records_recombined")


def _merge_sibling_singletons(
    sections: List[SectionInstance],
    config: FeatureConfig,
    cache: RecordDistanceCache,
    obs: ObserverLike = NULL_OBSERVER,
) -> List[SectionInstance]:
    """Consecutive sibling one-record sections -> one section (§5.5 end)."""
    out: List[SectionInstance] = []
    i = 0
    while i < len(sections):
        run = [sections[i]]
        while i + len(run) < len(sections):
            nxt = sections[i + len(run)]
            if not _mergeable(run[-1], nxt):
                break
            run.append(nxt)
        if len(run) >= 2:
            obs.count("granularity.singletons_merged", len(run))
            page = run[0].page
            merged = SectionInstance(
                page=page,
                block=Block(page, run[0].start, run[-1].end),
                records=[s.block for s in run],
                lbm=run[0].lbm,
                rbm=run[-1].rbm,
                origin="granularity-merged",
            )
            out.append(merged)
        else:
            out.append(run[0])
        i += len(run)
    return out


def _outermost_exact(
    page: RenderedPage, start: int, end: int
) -> Optional[Element]:
    """The highest element whose rendered lines are exactly ``start..end``.

    The minimum subtree of a one-record section may sit several wrappers
    deep (a ``tr`` inside its own ``table``); the sibling test of §5.5
    applies to the outermost such wrapper.
    """
    node = page.span_subtree(start, end)
    if node is None:
        return None
    while (
        node.parent is not None
        and page.line_range_of_element(node.parent) == (start, end)
    ):
        node = node.parent
    return node


def _mergeable(left: SectionInstance, right: SectionInstance) -> bool:
    if len(left.records) != 1 or len(right.records) != 1:
        return False
    if right.start != left.end + 1:
        return False  # a gap (e.g. a boundary marker) separates them
    subtree_left = _outermost_exact(left.page, left.start, left.end)
    subtree_right = _outermost_exact(right.page, right.start, right.end)
    if subtree_left is None or subtree_right is None:
        return False
    return subtree_left.parent is subtree_right.parent


def resolve_granularity(
    sections: Sequence[SectionInstance],
    config: FeatureConfig = DEFAULT_CONFIG,
    cache: Optional[RecordDistanceCache] = None,
    obs: ObserverLike = NULL_OBSERVER,
) -> List[SectionInstance]:
    """Run the full §5.5 pass over one page's sections (in page order)."""
    if cache is None:
        cache = RecordDistanceCache(config)

    expanded: List[SectionInstance] = []
    for section in sections:
        expanded.extend(_fix_oversized(section, config, cache, obs=obs))
    for section in expanded:
        _fix_split_records(section, config, cache, obs=obs)
    merged = _merge_sibling_singletons(expanded, config, cache, obs=obs)
    merged.sort(key=lambda s: s.start)
    return merged
