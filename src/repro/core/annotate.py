"""Data annotation — labelling the units inside extracted records.

§1 of the paper decomposes complete extraction into section extraction,
record extraction, and *data annotation*; the paper covers the first two
and cites DeLa [24] for the third.  This module provides the third step
as a practical extension: given an extracted record (its content lines
on the rendered page), label each line with a role:

- **title** — the record's leading link/title line;
- **snippet** — descriptive plain-text lines;
- **url** — a displayed URL line (by pattern or the classic green/small
  styling);
- **date** / **price** — lines dominated by a date or price token;
- **meta** — remaining short auxiliary lines.

Roles are heuristic but deterministic, and they only consume the same
visual/line features the rest of the pipeline uses.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.model import ExtractedRecord, ExtractedSection, PageExtraction
from repro.render.lines import ContentLine, RenderedPage
from repro.render.linetypes import LineType

_URL_RE = re.compile(r"(?:https?://|www\.)\S+", re.IGNORECASE)
_DATE_RE = re.compile(
    r"\b(?:\d{1,2}[/-]\d{1,2}[/-]\d{2,4}|\d{4}-\d{2}-\d{2})\b"
)
_PRICE_RE = re.compile(r"\$\s?\d+(?:[.,]\d{2})?")

_TITLE_TYPES = frozenset(
    {LineType.LINK, LineType.LINK_TEXT, LineType.IMAGE_TEXT, LineType.HEADING}
)


@dataclass(frozen=True)
class AnnotatedRecord:
    """An extracted record with per-line roles and extracted fields."""

    record: ExtractedRecord
    #: role of each member line, aligned with ``record.lines``
    roles: Tuple[str, ...]
    #: best-effort field values pulled out of the lines
    fields: Dict[str, str] = field(default_factory=dict)

    @property
    def title(self) -> str:
        return self.fields.get("title", "")

    @property
    def snippet(self) -> str:
        return self.fields.get("snippet", "")

    @property
    def url(self) -> str:
        return self.fields.get("url", "")


def _classify_line(line_text: str, line: Optional[ContentLine], index: int) -> str:
    if line is not None and line.line_type == LineType.HR:
        return "meta"
    stripped = line_text.strip()
    if not stripped:
        return "meta"
    url_match = _URL_RE.search(stripped)
    if url_match is not None and len(stripped) <= 120:
        # A line that is mostly a URL is a displayed-URL line.
        url = url_match.group(0)
        if len(url) >= 0.6 * len(stripped):
            return "url"
    without_date = _DATE_RE.sub("", stripped)
    if len(without_date.strip()) <= 0.4 * len(stripped):
        return "date"
    without_price = _PRICE_RE.sub("", stripped)
    if len(without_price.strip()) <= 0.4 * len(stripped):
        return "price"
    if index == 0 and line is not None and line.line_type in _TITLE_TYPES:
        return "title"
    if index == 0 and line is None:
        return "title"  # no visual info: lead line is the best title guess
    if line is not None and line.line_type == LineType.TEXT and len(stripped) >= 20:
        return "snippet"
    if line is None and len(stripped) >= 20:
        return "snippet"
    return "meta"


def annotate_record(
    record: ExtractedRecord, page: Optional[RenderedPage] = None
) -> AnnotatedRecord:
    """Label one record's lines.

    When the source ``page`` is supplied, the line type codes sharpen the
    classification; without it, annotation falls back to text patterns.
    """
    roles: List[str] = []
    for offset, text in enumerate(record.lines):
        line = None
        if page is not None:
            number = record.line_span[0] + offset
            if 0 <= number < len(page.lines):
                line = page.lines[number]
        roles.append(_classify_line(text, line, offset))

    fields: Dict[str, str] = {}
    for role, text in zip(roles, record.lines):
        if not text:
            continue
        if role == "title" and "title" not in fields:
            fields["title"] = text
        elif role == "snippet":
            fields["snippet"] = (
                (fields.get("snippet", "") + " " + text).strip()
            )
        elif role == "url" and "url" not in fields:
            match = _URL_RE.search(text)
            fields["url"] = match.group(0) if match else text
        elif role == "date" and "date" not in fields:
            match = _DATE_RE.search(text)
            fields["date"] = match.group(0) if match else text
        elif role == "price" and "price" not in fields:
            match = _PRICE_RE.search(text)
            fields["price"] = match.group(0) if match else text
    if "title" not in fields and record.lines:
        fields["title"] = record.lines[0]

    # Inline dates/prices inside the title are worth surfacing too.
    if "date" not in fields:
        match = _DATE_RE.search(record.text)
        if match:
            fields["date"] = match.group(0)
    if "price" not in fields:
        match = _PRICE_RE.search(record.text)
        if match:
            fields["price"] = match.group(0)

    return AnnotatedRecord(record=record, roles=tuple(roles), fields=fields)


def annotate_section(
    section: ExtractedSection, page: Optional[RenderedPage] = None
) -> List[AnnotatedRecord]:
    """Annotate all records of one section."""
    return [annotate_record(record, page) for record in section.records]


def annotate_extraction(
    extraction: PageExtraction, page: Optional[RenderedPage] = None
) -> Dict[str, List[AnnotatedRecord]]:
    """Annotate a full page extraction; keyed by section schema id."""
    out: Dict[str, List[AnnotatedRecord]] = {}
    for index, section in enumerate(extraction.sections):
        key = section.schema_id or f"section{index}"
        out[key] = annotate_section(section, page)
    return out
