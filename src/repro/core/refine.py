"""Refining MRs against DSs (paper §5.3, Figures 6-8).

MRs (visual pattern mining) and DSs (boundary-marker analysis) are
obtained independently; comparing them repairs both:

- **case 1** exact match — keep the MR's records as the DS's records;
- **case 2** an MR spans several DSs — the MR swallowed boundary markers;
  it is split at the DS boundaries and each piece refined;
- **case 3** a DS contains MRs — the DS has extra lines (ED) around or
  between the MRs; records are grown into the ED while they stay similar
  to the verified overlap records, leftovers become new DSs;
- **case 4** partial overlap — the extra-MR part (EM) is cut back after
  verifying the DS's LBM (an LBM whose surrounding record looks like the
  overlap records is *false* and the section extends across it); the
  extra-DS part (ED) is absorbed record-by-record as in case 3;
- **case 5** an MR with no DS overlap is static repetition — dropped; a
  DS with no MR is kept for record mining (it may hold < 3 records).

The similarity test throughout is the paper's
``Davgrs(r, OL) <= W * Dinr(OL)`` with ``W = 1.8``; ``Dinr(OL)`` is
floored (see :class:`repro.features.config.FeatureConfig`) because
same-format records can have distance exactly 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.dse import DynamicSection
from repro.core.model import SectionInstance
from repro.core.mre import TentativeMR
from repro.features.blocks import Block
from repro.features.config import DEFAULT_CONFIG, FeatureConfig
from repro.features.cohesion import inter_record_distance
from repro.features.record_distance import RecordDistanceCache
from repro.obs import NULL_OBSERVER, ObserverLike
from repro.render.lines import RenderedPage


def _threshold(
    overlap_records: Sequence[Block],
    config: FeatureConfig,
    cache: RecordDistanceCache,
) -> float:
    """W * max(Dinr(OL), floor) — the record-acceptance threshold."""
    dinr = inter_record_distance(overlap_records, config, cache)
    return config.refine_w * max(dinr, config.dinr_floor)


def _similar(
    candidate: Block,
    overlap_records: Sequence[Block],
    config: FeatureConfig,
    cache: RecordDistanceCache,
) -> bool:
    return cache.average_to_group(candidate, list(overlap_records)) <= _threshold(
        overlap_records, config, cache
    )


def _grow_into_ed(
    page: RenderedPage,
    records: List[Block],
    ed_start: int,
    ed_end: int,
    side: str,
    config: FeatureConfig,
    cache: RecordDistanceCache,
) -> Tuple[List[Block], Optional[Tuple[int, int]]]:
    """Absorb ED lines into ``records`` (Figure 8, lines 7-14).

    Tentative records grow cumulatively from the section edge outward; the
    best one is accepted while it passes the similarity test.  Returns the
    updated records and the leftover ED span (a new DS), if any.
    """
    while ed_start <= ed_end:
        if side == "right":
            tentative = [Block(page, ed_start, e) for e in range(ed_start, ed_end + 1)]
        else:
            tentative = [Block(page, s, ed_end) for s in range(ed_end, ed_start - 1, -1)]
        best = min(tentative, key=lambda b: cache.average_to_group(b, records))
        if not _similar(best, records, config, cache):
            break
        if side == "right":
            records.append(best)
            ed_start = best.end + 1
        else:
            records.insert(0, best)
            ed_end = best.start - 1
    leftover = (ed_start, ed_end) if ed_start <= ed_end else None
    return records, leftover


def _previous_csbm(csbms: Set[int], before: int) -> Optional[int]:
    candidates = [n for n in csbms if n < before]
    return max(candidates) if candidates else None


def _next_csbm(csbms: Set[int], after: int, page_len: int) -> Optional[int]:
    candidates = [n for n in csbms if n > after]
    return min(candidates) if candidates else None


def _verify_boundary(
    mr_records: List[Block],
    overlap: List[Block],
    marker: int,
    side: str,
    csbms: Set[int],
    config: FeatureConfig,
    cache: RecordDistanceCache,
) -> Tuple[List[Block], Optional[int]]:
    """EM handling (Figure 8, lines 2-6), generalized to either side.

    ``marker`` is the current boundary-marker line (the DS's LBM or RBM),
    which lies inside the MR's span.  While the MR record containing the
    marker looks like the overlap records, the marker is false: the record
    is absorbed and the next CSBM outward becomes the tentative marker.
    Returns the accepted extra records (outward order) and the verified
    marker line (None when the section runs to the MR's edge unmarked).
    """
    accepted: List[Block] = []
    current_marker: Optional[int] = marker
    while current_marker is not None:
        containing = [
            r for r in mr_records if r.start <= current_marker <= r.end
        ]
        if not containing:
            break
        boundary_record = containing[0]
        if not _similar(boundary_record, overlap + accepted, config, cache):
            break  # marker verified
        accepted.append(boundary_record)
        if side == "left":
            current_marker = _previous_csbm(csbms, boundary_record.start)
        else:
            current_marker = _next_csbm(
                csbms, boundary_record.end, len(boundary_record.page.lines)
            )
    return accepted, current_marker


@dataclass
class RefineResult:
    """Output of the refinement stage for one page."""

    #: sections whose records are already identified (from MRs)
    sections: List[SectionInstance]
    #: DS fragments still needing record mining (§5.4)
    pending: List[DynamicSection]


def _overlap_case(
    mr: TentativeMR, ds: DynamicSection, dss: Sequence[DynamicSection]
) -> str:
    """Classify one MR/DS interaction into the §5.3 case taxonomy.

    Used only for observability counters (``refine.case*``); the actual
    repair logic below handles all cases uniformly.
    """
    if mr.start == ds.start and mr.end == ds.end:
        return "case1_exact"
    spanned = sum(
        1 for other in dss if mr.start <= other.end and other.start <= mr.end
    )
    if spanned > 1:
        return "case2_mr_spans_dss"
    if ds.start <= mr.start and mr.end <= ds.end:
        return "case3_ds_contains_mr"
    return "case4_partial"


def refine_page(
    page: RenderedPage,
    mrs: Sequence[TentativeMR],
    dss: Sequence[DynamicSection],
    csbms: Set[int],
    config: FeatureConfig = DEFAULT_CONFIG,
    cache: Optional[RecordDistanceCache] = None,
    obs: ObserverLike = NULL_OBSERVER,
) -> RefineResult:
    """Run the §5.3 refinement over one page's MRs and DSs."""
    if cache is None:
        cache = RecordDistanceCache(config)

    if obs.enabled:
        # Case 5's static half: MRs that overlap no DS are repeated
        # template content and never enter the loop below.
        for mr in mrs:
            if not any(mr.start <= ds.end and ds.start <= mr.end for ds in dss):
                obs.count("refine.case5_static_mr")

    sections: List[SectionInstance] = []
    pending: List[DynamicSection] = []
    claimed: List[Tuple[int, int]] = []  # line spans owned by sections

    for ds in dss:
        if _fully_claimed(ds, claimed):
            continue  # an earlier section already absorbed these lines
        overlapping = [
            mr for mr in mrs if mr.start <= ds.end and ds.start <= mr.end
        ]
        if not overlapping:
            pending.append(ds)  # case 5: dynamic for sure, mine later
            obs.count("refine.case5_unmatched_ds")
            continue
        if obs.enabled:
            for mr in overlapping:
                obs.count(f"refine.{_overlap_case(mr, ds, dss)}")

        overlapping.sort(key=lambda mr: mr.start)
        cursor = ds.start  # first unassigned DS line

        for mr_index, mr in enumerate(overlapping):
            overlap = [
                r for r in mr.records if r.start >= ds.start and r.end <= ds.end
            ]
            if not overlap:
                # No record sits fully inside: a false in-section CSBM may
                # have chopped the DS smaller than one record.  Fall back
                # to the records that intersect it.
                overlap = [
                    r for r in mr.records if r.start <= ds.end and ds.start <= r.end
                ]
            if not overlap:
                continue  # negligible overlap; MR likely belongs elsewhere

            records = list(overlap)

            # --- EM on the left: MR extends left past the DS (case 4) ---
            if mr.start < ds.start and ds.lbm is not None:
                extra, _marker = _verify_boundary(
                    list(mr.records), overlap, ds.lbm, "left", csbms, config, cache
                )
                for record in extra:
                    # Absorbed records extend the section past the old LBM.
                    records.insert(0, record)

            # --- EM on the right: MR extends right past the DS ---
            if mr.end > ds.end and ds.rbm is not None:
                extra, _marker = _verify_boundary(
                    list(mr.records), overlap, ds.rbm, "right", csbms, config, cache
                )
                records.extend(extra)

            # --- ED before this MR's records (case 3 / case 4 left) ---
            first_start = records[0].start
            if cursor < first_start:
                records, leftover = _grow_into_ed(
                    page, records, cursor, first_start - 1, "left", config, cache
                )
                if leftover is not None:
                    pending.append(
                        DynamicSection(page, leftover[0], leftover[1], lbm=ds.lbm)
                    )

            # --- ED after the last MR's records up to the DS end ---
            is_last = mr_index == len(overlapping) - 1
            last_end = records[-1].end
            ed_limit = ds.end if is_last else min(ds.end, overlapping[mr_index + 1].start - 1)
            if last_end < ed_limit:
                records, leftover = _grow_into_ed(
                    page, records, last_end + 1, ed_limit, "right", config, cache
                )
                if leftover is not None and is_last:
                    pending.append(
                        DynamicSection(page, leftover[0], leftover[1], rbm=ds.rbm)
                    )
                # Leftover between two MRs is handled by the next MR's
                # left-side ED pass via the cursor.

            records = _dedupe_records(records)
            records = [
                r
                for r in records
                if not any(cs <= r.end and r.start <= ce for cs, ce in claimed)
            ]
            if not records:
                continue  # an earlier section already owns these lines
            sections.append(
                SectionInstance(
                    page=page,
                    block=Block(page, records[0].start, records[-1].end),
                    records=records,
                    lbm=_previous_csbm(csbms, records[0].start),
                    rbm=_next_csbm(csbms, records[-1].end, len(page.lines)),
                    origin="refine",
                )
            )
            claimed.append((records[0].start, records[-1].end))
            cursor = max(cursor, records[-1].end + 1)

    # Remove pending fragments swallowed by refined sections.
    pending = _subtract_claimed(pending, claimed)
    sections.sort(key=lambda s: s.start)
    pending.sort(key=lambda d: d.start)
    return RefineResult(sections=sections, pending=pending)


def _fully_claimed(ds: DynamicSection, claimed: List[Tuple[int, int]]) -> bool:
    return any(start <= ds.start and ds.end <= end for start, end in claimed)


def _dedupe_records(records: List[Block]) -> List[Block]:
    """Sort records and drop duplicates / fully-contained ones."""
    ordered = sorted(set(records), key=lambda r: (r.start, -r.end))
    out: List[Block] = []
    for record in ordered:
        if out and record.end <= out[-1].end:
            continue  # contained in the previous record
        out.append(record)
    return out


def _subtract_claimed(
    pending: List[DynamicSection], claimed: List[Tuple[int, int]]
) -> List[DynamicSection]:
    """Clip pending DS fragments against lines claimed by refined sections."""
    out: List[DynamicSection] = []
    for ds in pending:
        fragments = [(ds.start, ds.end)]
        for c_start, c_end in claimed:
            next_fragments: List[Tuple[int, int]] = []
            for f_start, f_end in fragments:
                if c_end < f_start or c_start > f_end:
                    next_fragments.append((f_start, f_end))
                    continue
                if f_start < c_start:
                    next_fragments.append((f_start, c_start - 1))
                if c_end < f_end:
                    next_fragments.append((c_end + 1, f_end))
            fragments = next_fragments
        for f_start, f_end in fragments:
            out.append(
                DynamicSection(
                    ds.page,
                    f_start,
                    f_end,
                    lbm=ds.lbm if f_start == ds.start else None,
                    rbm=ds.rbm if f_end == ds.end else None,
                )
            )
    return out
