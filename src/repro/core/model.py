"""Shared data model of the MSE pipeline.

Internal pipeline objects (:class:`SectionInstance`) are line-span views
over rendered pages; the user-facing extraction results
(:class:`ExtractedSection` etc.) are plain data detached from the
pipeline's internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.features.blocks import Block
from repro.render.lines import ContentLine, RenderedPage


@dataclass
class SectionInstance:
    """One section on one rendered page, as seen by the pipeline.

    ``block`` is the section's full line span; ``records`` partition that
    span (once mining has run).  ``lbm``/``rbm`` are the line numbers of
    the boundary-marker content lines (which are *outside* the block).
    ``origin`` records which stage produced the instance — useful in tests
    and ablations.
    """

    page: RenderedPage
    block: Block
    records: List[Block] = field(default_factory=list)
    lbm: Optional[int] = None
    rbm: Optional[int] = None
    origin: str = ""
    #: extraction confidence (boundary-marker agreement); used to resolve
    #: overlapping claims between wrappers at extraction time
    score: float = 0.0

    @property
    def start(self) -> int:
        return self.block.start

    @property
    def end(self) -> int:
        return self.block.end

    @property
    def lbm_line(self) -> Optional[ContentLine]:
        """The left boundary marker content line, if identified."""
        return self.page.lines[self.lbm] if self.lbm is not None else None

    @property
    def rbm_line(self) -> Optional[ContentLine]:
        """The right boundary marker content line, if identified."""
        return self.page.lines[self.rbm] if self.rbm is not None else None

    def record_spans(self) -> List[Tuple[int, int]]:
        """The (start, end) line spans of the records."""
        return [(r.start, r.end) for r in self.records]

    def __repr__(self) -> str:
        return (
            f"SectionInstance[{self.start}..{self.end}] "
            f"records={len(self.records)} origin={self.origin!r}"
        )


@dataclass(frozen=True)
class ExtractedRecord:
    """One extracted search result record."""

    #: whitespace-collapsed text of each member content line
    lines: Tuple[str, ...]
    #: (first, last) content-line numbers on the source page
    line_span: Tuple[int, int]

    @property
    def text(self) -> str:
        """The record's full text."""
        return " / ".join(line for line in self.lines if line)


@dataclass(frozen=True)
class ExtractedSection:
    """One extracted dynamic section with its records, in page order."""

    records: Tuple[ExtractedRecord, ...]
    #: (first, last) content-line numbers of the section body
    line_span: Tuple[int, int]
    #: text of the left / right boundary markers ('' when absent)
    lbm_text: str = ""
    rbm_text: str = ""
    #: identifier of the section schema the wrapper attributed this to;
    #: family-extracted hidden sections get family ids
    schema_id: str = ""

    def __len__(self) -> int:
        return len(self.records)


@dataclass(frozen=True)
class PageExtraction:
    """All dynamic sections extracted from one result page, in page order.

    The section-record relationship the paper insists on is preserved:
    records are grouped under their sections rather than flattened.
    """

    sections: Tuple[ExtractedSection, ...]

    def __len__(self) -> int:
        return len(self.sections)

    @property
    def record_count(self) -> int:
        """Total records across all sections."""
        return sum(len(section) for section in self.sections)

    def all_records(self) -> List[ExtractedRecord]:
        """Flattened records (section order preserved)."""
        out: List[ExtractedRecord] = []
        for section in self.sections:
            out.extend(section.records)
        return out


def section_to_extracted(instance: SectionInstance, schema_id: str = "") -> ExtractedSection:
    """Convert a pipeline section instance to the user-facing form."""
    records = tuple(
        ExtractedRecord(
            lines=tuple(line.text for line in record.lines),
            line_span=(record.start, record.end),
        )
        for record in instance.records
    )
    lbm = instance.lbm_line
    rbm = instance.rbm_line
    return ExtractedSection(
        records=records,
        line_span=(instance.start, instance.end),
        lbm_text=lbm.text if lbm is not None else "",
        rbm_text=rbm.text if rbm is not None else "",
        schema_id=schema_id,
    )
