"""Rendering substrate: style resolution, font metrics, layout -> content lines."""

from repro.render.layout import render_html, render_page
from repro.render.lines import ContentLine, RenderedPage, deepest_common_ancestor
from repro.render.linetypes import LineType, type_distance
from repro.render.styles import TextAttr, default_attr

__all__ = [
    "ContentLine",
    "LineType",
    "RenderedPage",
    "TextAttr",
    "deepest_common_ancestor",
    "default_attr",
    "render_html",
    "render_page",
    "type_distance",
]
