"""Text attribute resolution (paper §4.2).

A *text attribute* is the quaternion ⟨font, size, style, color⟩ of a piece
of rendered text.  This module resolves text attributes from the HTML
context: presentational tags (``<b>``, ``<i>``, ``<font>``, ``<h1>``...),
legacy attributes (``face``, ``size``, ``color``) and a practical subset of
inline CSS (``font-family``, ``font-size``, ``font-weight``,
``font-style``, ``color``) — the styling vocabulary of 2006-era result
pages.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Dict, Optional

DEFAULT_FONT = "times new roman"
DEFAULT_SIZE = 12
DEFAULT_COLOR = "black"

#: font-size for <h1>..<h6>
_HEADING_SIZES = {"h1": 24, "h2": 20, "h3": 16, "h4": 14, "h5": 12, "h6": 10}

#: legacy <font size=1..7> to pixels
_FONT_SIZE_STEPS = {1: 8, 2: 10, 3: 12, 4: 14, 5: 18, 6: 24, 7: 32}

_STYLE_DECL_RE = re.compile(r"([a-zA-Z-]+)\s*:\s*([^;]+)")
_PX_RE = re.compile(r"(\d+(?:\.\d+)?)\s*(px|pt)?")


@dataclass(frozen=True)
class TextAttr:
    """⟨font, size, style, color⟩ of a run of text.

    ``style`` is one of ``plain``, ``bold``, ``italic``, ``bold italic``;
    ``underline`` rides along as a separate flag because anchors are the
    dominant underline source and are useful to distinguish.
    """

    font: str = DEFAULT_FONT
    size: int = DEFAULT_SIZE
    style: str = "plain"
    color: str = DEFAULT_COLOR
    underline: bool = False

    @property
    def bold(self) -> bool:
        return "bold" in self.style

    @property
    def italic(self) -> bool:
        return "italic" in self.style

    def __str__(self) -> str:
        flags = self.style + ("+u" if self.underline else "")
        return f"<{self.font},{self.size},{flags},{self.color}>"


def _combine_style(bold: bool, italic: bool) -> str:
    if bold and italic:
        return "bold italic"
    if bold:
        return "bold"
    if italic:
        return "italic"
    return "plain"


def parse_inline_style(style_text: str) -> Dict[str, str]:
    """Parse a ``style="..."`` attribute into a property dict (lowercased)."""
    properties: Dict[str, str] = {}
    for match in _STYLE_DECL_RE.finditer(style_text):
        properties[match.group(1).strip().lower()] = match.group(2).strip().lower()
    return properties


def _parse_size(value: str, current: int) -> int:
    value = value.strip().lower()
    keywords = {
        "xx-small": 8, "x-small": 9, "small": 10, "smaller": max(8, current - 2),
        "medium": 12, "large": 14, "larger": current + 2, "x-large": 18,
        "xx-large": 24,
    }
    if value in keywords:
        return keywords[value]
    match = _PX_RE.match(value)
    if match:
        number = float(match.group(1))
        if match.group(2) == "pt":
            number *= 4.0 / 3.0
        return max(6, int(round(number)))
    return current


def apply_element_style(attr: TextAttr, tag: str, attrs: Dict[str, str]) -> TextAttr:
    """Return ``attr`` updated for entering an element.

    This is the single place encoding how tags affect text attributes; the
    layout engine pushes the result onto its style stack.
    """
    font = attr.font
    size = attr.size
    bold = attr.bold
    italic = attr.italic
    color = attr.color
    underline = attr.underline

    if tag in ("b", "strong", "th"):
        bold = True
    elif tag in ("i", "em", "cite", "var"):
        italic = True
    elif tag == "u":
        underline = True
    elif tag in _HEADING_SIZES:
        size = _HEADING_SIZES[tag]
        bold = True
    elif tag == "big":
        size += 2
    elif tag in ("small", "sub", "sup"):
        size = max(6, size - 2)
    elif tag == "a" and ("href" in attrs):
        color = "blue"
        underline = True
    elif tag == "font":
        face = attrs.get("face")
        if face:
            font = face.split(",")[0].strip().lower()
        legacy = attrs.get("size")
        if legacy:
            legacy = legacy.strip()
            try:
                if legacy.startswith(("+", "-")):
                    # Relative legacy sizes step from size 3 (12px).
                    step = max(1, min(7, 3 + int(legacy)))
                else:
                    step = max(1, min(7, int(legacy)))
                size = _FONT_SIZE_STEPS[step]
            except ValueError:
                pass
        if attrs.get("color"):
            color = attrs["color"].strip().lower()
    elif tag in ("tt", "code", "pre", "kbd", "samp"):
        font = "courier new"

    if attrs.get("color") and tag != "font":
        color = attrs["color"].strip().lower()

    style_attr = attrs.get("style")
    if style_attr:
        css = parse_inline_style(style_attr)
        if "font-family" in css:
            font = css["font-family"].split(",")[0].strip().strip("'\"")
        if "font-size" in css:
            size = _parse_size(css["font-size"], size)
        if "font-weight" in css:
            bold = css["font-weight"] in ("bold", "bolder", "600", "700", "800", "900")
        if "font-style" in css:
            italic = css["font-style"] in ("italic", "oblique")
        if "color" in css:
            color = css["color"]
        if "text-decoration" in css:
            underline = "underline" in css["text-decoration"]

    return TextAttr(font, size, _combine_style(bold, italic), color, underline)


def default_attr() -> TextAttr:
    """The attribute of body text with no styling applied."""
    return TextAttr()
