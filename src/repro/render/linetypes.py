"""Content line types and the type distance ``Dtl``.

ViNTs (and §4.2 of this paper) classifies every rendered content line into
one of eight *type codes* capturing its basic appearance.  The exact eight
types of [29] are not enumerated in either paper; we use the natural set
below, which covers everything a result page displays:

====  ===========  ============================================
code  type         a line consisting of ...
====  ===========  ============================================
1     TEXT         plain text only
2     LINK         anchor text only
3     LINK_TEXT    anchors mixed with plain text
4     IMAGE        images only
5     IMAGE_TEXT   images mixed with text and/or anchors
6     FORM         form controls (input/select/button/textarea)
7     HR           a horizontal rule
8     HEADING      text inside h1..h6
====  ===========  ============================================

``type_distance`` returns a value in [0, 1]; types that commonly appear in
the same role on result pages (e.g. LINK vs LINK_TEXT — a title line with
or without surrounding plain text) are close, unrelated types are far.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict, Tuple


class LineType(IntEnum):
    """Visual type code of a content line."""

    TEXT = 1
    LINK = 2
    LINK_TEXT = 3
    IMAGE = 4
    IMAGE_TEXT = 5
    FORM = 6
    HR = 7
    HEADING = 8


# Pairwise distances for "related" type pairs; everything else is 1.0 and
# the diagonal is 0.0.  Symmetric by construction.
_RELATED: Dict[Tuple[LineType, LineType], float] = {
    (LineType.LINK, LineType.LINK_TEXT): 0.3,
    (LineType.TEXT, LineType.LINK_TEXT): 0.4,
    (LineType.TEXT, LineType.LINK): 0.6,
    (LineType.IMAGE, LineType.IMAGE_TEXT): 0.3,
    (LineType.TEXT, LineType.IMAGE_TEXT): 0.6,
    (LineType.LINK_TEXT, LineType.IMAGE_TEXT): 0.5,
    (LineType.LINK, LineType.IMAGE_TEXT): 0.6,
    (LineType.TEXT, LineType.HEADING): 0.5,
    (LineType.LINK, LineType.HEADING): 0.6,
    (LineType.LINK_TEXT, LineType.HEADING): 0.6,
}


def type_distance(type1: LineType, type2: LineType) -> float:
    """Distance between two line type codes, in [0, 1]."""
    if type1 == type2:
        return 0.0
    key = (type1, type2) if type1 <= type2 else (type2, type1)
    return _RELATED.get(key, 1.0)
