"""A deterministic layout engine: DOM -> content lines.

Approximates the browser rendering step of the paper (step 1 of MSE): a
pre-order walk of the DOM in which block-level boundaries and ``<br>``
delimit content lines.  Each line receives the visual features §4.2
defines — type code, position code (left x coordinate) and the set of
text attributes of its runs.

The model:

- the viewport is 800 px wide; the body has an 8 px margin;
- block elements (``div``, ``p``, ``li``, ``td``, headings, ...) start a
  new line; inline elements continue the current one;
- lists, ``blockquote`` and ``dd`` indent by 40 px; table cells are offset
  by the widths of their preceding cells (``width`` attributes, with a
  default column width when unspecified); ``margin-left``/``padding-left``
  inline CSS also indents;
- ``<hr>`` emits an HR line; images and form controls are inline items
  that determine the line's type code;
- ``display:none`` subtrees, ``<head>``, ``<script>`` and ``<style>`` are
  not rendered.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.htmlmod.dom import Comment, Document, Element, Node, Text, collapse_whitespace
from repro.render.fonts import text_width
from repro.render.linetypes import LineType
from repro.render.lines import ContentLine, RenderedPage
from repro.render.styles import TextAttr, apply_element_style, default_attr, parse_inline_style

VIEWPORT_WIDTH = 800
BODY_MARGIN = 8
LIST_INDENT = 40
DEFAULT_COLUMN_WIDTH = 120

#: Elements that establish a new line before and after their content.
BLOCK_ELEMENTS = frozenset(
    {
        "address", "blockquote", "center", "dd", "div", "dl", "dt",
        "fieldset", "form", "h1", "h2", "h3", "h4", "h5", "h6", "li",
        "ol", "p", "pre", "table", "tbody", "td", "tfoot", "th", "thead",
        "tr", "ul", "caption",
    }
)

#: Elements never rendered.
INVISIBLE_ELEMENTS = frozenset(
    {"head", "script", "style", "title", "meta", "link", "base", "noscript", "map"}
)

_HEADINGS = frozenset({"h1", "h2", "h3", "h4", "h5", "h6"})
_FORM_CONTROLS = frozenset({"input", "select", "textarea", "button"})


class _InlineItem:
    """One inline contribution to the current line."""

    __slots__ = ("kind", "text", "attr", "leaf", "in_link")

    def __init__(
        self, kind: str, text: str, attr: TextAttr, leaf: Node, in_link: bool
    ) -> None:
        self.kind = kind  # 'text' | 'image' | 'form'
        self.text = text
        self.attr = attr
        self.leaf = leaf
        self.in_link = in_link


class _Renderer:
    def __init__(self) -> None:
        self.lines: List[ContentLine] = []
        self._items: List[_InlineItem] = []
        self._line_x: Optional[int] = None
        self._heading_depth = 0
        self._link_depth = 0

    # -- line assembly ----------------------------------------------------
    def _flush(self) -> None:
        items = self._items
        if not items:
            self._line_x = None
            return
        self._items = []
        line_x = self._line_x if self._line_x is not None else BODY_MARGIN
        self._line_x = None

        text = collapse_whitespace(" ".join(i.text for i in items if i.text))
        has_image = any(i.kind == "image" for i in items)
        has_form = any(i.kind == "form" for i in items)
        if not text and not has_image and not has_form:
            return

        line_type = self._classify(items, text, has_image, has_form)
        attrs = frozenset(i.attr for i in items if i.kind == "text" and i.text.strip())
        if not attrs:
            attrs = frozenset({items[0].attr})
        width = int(
            sum(
                text_width(i.text, i.attr) if i.kind == "text" else 80
                for i in items
            )
        )
        leaves = tuple(i.leaf for i in items)
        self.lines.append(
            ContentLine(
                number=len(self.lines),
                text=text,
                line_type=line_type,
                position=line_x,
                attrs=attrs,
                width=width,
                leaves=leaves,
            )
        )

    def _classify(
        self, items: List[_InlineItem], text: str, has_image: bool, has_form: bool
    ) -> LineType:
        text_items = [i for i in items if i.kind == "text" and i.text.strip()]
        has_link_text = any(i.in_link for i in text_items)
        has_plain_text = any(not i.in_link for i in text_items)
        in_heading = any(i.attr.size >= 14 and i.attr.bold for i in text_items)

        if has_form:
            return LineType.FORM
        if has_image and not text:
            return LineType.IMAGE
        if has_image:
            return LineType.IMAGE_TEXT
        if self._heading_flag and text:
            return LineType.HEADING
        if has_link_text and has_plain_text:
            return LineType.LINK_TEXT
        if has_link_text:
            return LineType.LINK
        if in_heading:
            return LineType.HEADING
        return LineType.TEXT

    def _add_item(self, item: _InlineItem, x: int) -> None:
        if self._line_x is None:
            self._line_x = x
        self._items.append(item)

    # -- traversal ------------------------------------------------------------
    def walk(self, element: Element, attr: TextAttr, x: int) -> None:
        self._heading_flag = False
        self._walk_children(element, attr, x)
        self._flush()

    def _walk_children(self, element: Element, attr: TextAttr, x: int) -> None:
        for child in element.children:
            if isinstance(child, Text):
                if child.data:
                    self._add_item(
                        _InlineItem("text", child.data, attr, child, self._link_depth > 0),
                        x,
                    )
            elif isinstance(child, Element):
                self._walk_element(child, attr, x)
            # Comments are skipped.

    def _walk_element(self, element: Element, attr: TextAttr, x: int) -> None:
        tag = element.tag
        if tag in INVISIBLE_ELEMENTS:
            return
        css = parse_inline_style(element.get("style")) if element.get("style") else {}
        if css.get("display") == "none":
            return

        if tag == "br":
            self._flush()
            return
        if tag == "hr":
            self._flush()
            self.lines.append(
                ContentLine(
                    number=len(self.lines),
                    text="",
                    line_type=LineType.HR,
                    position=x,
                    attrs=frozenset({attr}),
                    width=VIEWPORT_WIDTH - 2 * x,
                    leaves=(element,),
                )
            )
            return
        if tag == "img":
            self._add_item(_InlineItem("image", "", attr, element, self._link_depth > 0), x)
            return
        if tag in _FORM_CONTROLS:
            if tag == "select":
                # Options are collapsed into the control; not walked.
                label = element.get("name", "")
            else:
                label = element.get("value", "")
            self._add_item(_InlineItem("form", label, attr, element, False), x)
            return

        child_attr = apply_element_style(attr, tag, element.attrs)
        child_x = x + _indent_delta(element, css)

        is_block = tag in BLOCK_ELEMENTS
        if is_block:
            self._flush()
        if tag in _HEADINGS:
            self._heading_flag = True
        if tag == "a" and "href" in element.attrs:
            self._link_depth += 1

        if tag == "tr":
            self._walk_table_row(element, child_attr, child_x)
        else:
            self._walk_children(element, child_attr, child_x)

        if tag == "a" and "href" in element.attrs:
            self._link_depth -= 1
        if is_block:
            self._flush()
        if tag in _HEADINGS:
            self._heading_flag = False

    def _walk_table_row(self, row: Element, attr: TextAttr, x: int) -> None:
        offset = 0
        for child in row.children:
            if isinstance(child, Element) and child.tag in ("td", "th"):
                self._flush()
                cell_css = (
                    parse_inline_style(child.get("style")) if child.get("style") else {}
                )
                cell_attr = apply_element_style(attr, child.tag, child.attrs)
                cell_x = x + offset + _indent_delta(child, cell_css)
                self._walk_children(child, cell_attr, cell_x)
                self._flush()
                offset += _cell_width(child)
            elif isinstance(child, Element):
                self._walk_element(child, attr, x)
            elif isinstance(child, Text) and child.data.strip():
                self._add_item(_InlineItem("text", child.data, attr, child, False), x)


def _cell_width(cell: Element) -> int:
    raw = cell.get("width").strip()
    if raw.endswith("%"):
        try:
            return int(VIEWPORT_WIDTH * float(raw[:-1]) / 100.0)
        except ValueError:
            return DEFAULT_COLUMN_WIDTH
    try:
        return int(float(raw))
    except ValueError:
        return DEFAULT_COLUMN_WIDTH


def _indent_delta(element: Element, css: dict) -> int:
    delta = 0
    tag = element.tag
    if tag in ("ul", "ol", "blockquote", "dd"):
        delta += LIST_INDENT
    for prop in ("margin-left", "padding-left"):
        value = css.get(prop)
        if value and value.endswith("px"):
            try:
                delta += int(float(value[:-2]))
            except ValueError:
                pass
    return delta


def render_page(document: Document) -> RenderedPage:
    """Render a document into content lines (MSE step 1)."""
    renderer = _Renderer()
    renderer.walk(document.body, default_attr(), BODY_MARGIN)
    return RenderedPage(document, renderer.lines)


def render_html(markup: str) -> RenderedPage:
    """Parse and render an HTML string in one call."""
    from repro.htmlmod.parser import parse_html

    return render_page(parse_html(markup))
