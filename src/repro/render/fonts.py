"""Approximate font metrics.

The layout engine needs rough text widths (for rendered line extents) and
line heights.  Real glyph metrics are unavailable offline, so we use
per-family average character widths expressed as a fraction of the font
size — the standard approximation for proportional faces — with a bold
widening factor.  These values are stable and deterministic, which is all
the extraction features require.
"""

from __future__ import annotations

from typing import Dict

from repro.render.styles import TextAttr

#: average advance width as a fraction of font size
_AVG_WIDTH_FACTOR: Dict[str, float] = {
    "times new roman": 0.48,
    "georgia": 0.50,
    "arial": 0.52,
    "helvetica": 0.52,
    "verdana": 0.58,
    "tahoma": 0.54,
    "courier new": 0.60,  # monospace
}

_DEFAULT_FACTOR = 0.50
_BOLD_FACTOR = 1.08


def char_width(attr: TextAttr) -> float:
    """Approximate advance width of an average character, in pixels."""
    factor = _AVG_WIDTH_FACTOR.get(attr.font, _DEFAULT_FACTOR)
    width = factor * attr.size
    if attr.bold:
        width *= _BOLD_FACTOR
    return width


def text_width(text: str, attr: TextAttr) -> float:
    """Approximate rendered width of ``text`` in pixels."""
    return len(text) * char_width(attr)


def line_height(attr: TextAttr) -> int:
    """Approximate line box height for text of this attribute."""
    return int(round(attr.size * 1.25))
