"""Content lines and rendered pages (paper §4.2).

A *content line* is a group of characters that visually form one
horizontal line on the rendered page.  Each carries the visual features
the paper's measures consume — type code, position code (left x), and the
set of text attributes — plus links back into the DOM so tag-structure
features (tag paths, tag forests) can be computed for any span of lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.htmlmod.dom import Document, Element, Node, Text
from repro.render.linetypes import LineType
from repro.render.styles import TextAttr
from repro.tagpath.paths import TagPath


@dataclass
class ContentLine:
    """One rendered horizontal line of content."""

    number: int
    text: str
    line_type: LineType
    position: int
    attrs: FrozenSet[TextAttr]
    width: int
    leaves: Tuple[Node, ...]
    #: text with dynamic components removed; filled in by DSE cleaning
    cleaned: str = ""

    _tag_path: Optional[TagPath] = field(default=None, repr=False, compare=False)

    @property
    def anchor_element(self) -> Element:
        """The element that directly contains the line's first leaf."""
        first = self.leaves[0]
        if isinstance(first, Element):
            return first
        assert first.parent is not None
        return first.parent

    @property
    def tag_path(self) -> TagPath:
        """Compact tag path to the line's first leaf (cached)."""
        if self._tag_path is None:
            self._tag_path = TagPath.to_node(self.leaves[0])
        return self._tag_path

    def __str__(self) -> str:
        preview = self.text if len(self.text) <= 50 else self.text[:47] + "..."
        return (
            f"[{self.number:3d}] x={self.position:<4d} "
            f"{self.line_type.name:<10s} {preview!r}"
        )


class RenderedPage:
    """A document plus its content lines, with DOM <-> line mapping."""

    def __init__(self, document: Document, lines: Sequence[ContentLine]) -> None:
        self.document = document
        self.lines: List[ContentLine] = list(lines)
        self._leaf_to_line: Dict[int, int] = {}
        for line in self.lines:  # lint: allow PERF01 -- one-pass leaf->line map build, linear in page leaves; this map is what lets PageIndex fold spans without re-walking subtrees
            for leaf in line.leaves:
                self._leaf_to_line[id(leaf)] = line.number

    def __len__(self) -> int:
        return len(self.lines)

    def __getitem__(self, index: int) -> ContentLine:
        return self.lines[index]

    def leaf_line_map(self) -> Dict[int, int]:
        """The ``id(leaf) -> line number`` map backing the DOM<->line links.

        Exposed (read-only by convention) so one-pass indexers — e.g.
        :class:`repro.perf.serve.PageIndex` — can fold every element's
        line span in a single post-order walk instead of re-walking each
        subtree per :meth:`line_range_of_element` call.
        """
        return self._leaf_to_line

    def line_of_node(self, node: Node) -> Optional[int]:
        """The line number rendering ``node``, if it is (or contains) a leaf."""
        direct = self._leaf_to_line.get(id(node))
        if direct is not None:
            return direct
        if isinstance(node, Element):
            for descendant in node.iter():
                found = self._leaf_to_line.get(id(descendant))
                if found is not None:
                    return found
        return None

    def line_range_of_element(self, element: Element) -> Optional[Tuple[int, int]]:
        """The [first, last] line numbers covered by an element, if any."""
        numbers = [
            self._leaf_to_line[id(node)]
            for node in element.iter()
            if id(node) in self._leaf_to_line
        ]
        if not numbers:
            return None
        return min(numbers), max(numbers)

    # -- tag-structure helpers -----------------------------------------------
    def span_forest(self, start: int, end: int) -> List[Element]:
        """The tag forest of lines ``start..end`` inclusive.

        Finds the deepest element containing every leaf of the span and
        returns the consecutive run of its children that covers the span.
        This is the "tag forest underneath a record/section" of §4.1.
        """
        span_lines = self.lines[start : end + 1]
        first_leaf: Optional[Node] = None
        last_leaf: Optional[Node] = None
        for line in span_lines:
            if line.leaves:
                if first_leaf is None:
                    first_leaf = line.leaves[0]
                last_leaf = line.leaves[-1]
        if first_leaf is None or last_leaf is None:
            return []
        # Rendering walks the DOM pre-order, so the span's leaves are in
        # document order, and every subtree covers a contiguous run of
        # them.  The deepest element containing all span leaves therefore
        # equals the deepest common ancestor of the *first and last* leaf
        # alone, and those two leaves' holders (the direct child of the
        # ancestor on each one's path) bound the child run — no per-leaf
        # collection or per-sibling subtree scans needed.
        first_chain = _ancestor_chain(first_leaf)
        if last_leaf is first_leaf:
            last_chain = first_chain
        else:
            last_chain = _ancestor_chain(last_leaf)
        shortest = min(len(first_chain), len(last_chain))
        depth_found = -1
        for depth in range(shortest):
            if first_chain[depth] is last_chain[depth]:
                depth_found = depth
            else:
                break
        if depth_found < 0:
            return []
        ancestor = first_chain[depth_found]

        def holder_of(leaf: Node, chain: List[Element]) -> Node:
            return (
                chain[depth_found + 1]
                if len(chain) > depth_found + 1
                else leaf
            )

        first_holder = holder_of(first_leaf, first_chain)
        last_holder = holder_of(last_leaf, last_chain)
        first_index = last_index = None
        for i, child in enumerate(ancestor.children):
            if first_index is None and child is first_holder:
                first_index = i
            if child is last_holder:
                last_index = i
        if first_index is None or last_index is None or first_index > last_index:
            # Degenerate span (a holder is the ancestor itself, e.g. an
            # element leaf acting as its own container): fall back to
            # bounding the run over every leaf's holder.
            leaves: List[Node] = []
            for line in span_lines:
                leaves.extend(line.leaves)
            first_index = last_index = None
            for leaf in leaves:
                chain = _ancestor_chain(leaf)
                holder = holder_of(leaf, chain)
                for i, child in enumerate(ancestor.children):
                    if child is holder:
                        if first_index is None or i < first_index:
                            first_index = i
                        if last_index is None or i > last_index:
                            last_index = i
                        break
        if first_index is None or last_index is None:
            return []
        forest = [
            child
            for child in ancestor.children[first_index : last_index + 1]
            if isinstance(child, Element)
        ]
        if not forest:
            # All leaves are direct text children of the ancestor (e.g. a
            # bare title line inside an <a>): the forest degenerates to
            # the ancestor element itself.
            return [ancestor]
        return forest

    def span_subtree(self, start: int, end: int) -> Optional[Element]:
        """The minimum subtree containing lines ``start..end`` inclusive.

        By the document-order invariant (rendering walks the DOM
        pre-order, so subtrees cover contiguous leaf runs) the deepest
        common ancestor of *all* span leaves equals that of the first
        and last alone — two ancestor chains instead of one per leaf.
        """
        first_leaf: Optional[Node] = None
        last_leaf: Optional[Node] = None
        for line in self.lines[start : end + 1]:
            if line.leaves:
                if first_leaf is None:
                    first_leaf = line.leaves[0]
                last_leaf = line.leaves[-1]
        if first_leaf is None or last_leaf is None:
            return None
        return deepest_common_ancestor((first_leaf, last_leaf))

    def dump(self) -> str:
        """A human-readable rendering of the content lines (for examples)."""
        return "\n".join(str(line) for line in self.lines)


def _ancestor_chain(node: Node) -> List[Element]:
    """The node's element ancestry, root first (itself included if one)."""
    out: List[Element] = []
    if isinstance(node, Element):
        out.append(node)
    out.extend(node.ancestors())
    out.reverse()  # root first
    return out


def deepest_common_ancestor(nodes: Sequence[Node]) -> Optional[Element]:
    """The deepest element that is an ancestor of every node in ``nodes``.

    A node that is itself an element counts as its own ancestor.
    """
    if not nodes:
        return None

    chains = [_ancestor_chain(node) for node in nodes]
    shortest = min(len(c) for c in chains)
    ancestor: Optional[Element] = None
    for depth in range(shortest):
        candidate = chains[0][depth]
        if all(c[depth] is candidate for c in chains):
            ancestor = candidate
        else:
            break
    return ancestor
